"""Tests for repro.fsm.alphabet."""

import numpy as np
import pytest

from repro.fsm.alphabet import Alphabet


class TestConstruction:
    def test_from_symbols(self):
        ab = Alphabet.from_symbols("abc")
        assert ab.size == 3
        assert ab.id_of("b") == 1
        assert ab.symbol_of(2) == "c"

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Alphabet.from_symbols("aba")

    def test_binary(self):
        ab = Alphabet.binary()
        assert ab.size == 2
        assert ab.id_of(1) == 1

    def test_ascii(self):
        ab = Alphabet.ascii(128)
        assert ab.size == 128
        assert ab.id_of("A") == 65

    def test_ascii_bad_size(self):
        with pytest.raises(ValueError):
            Alphabet.ascii(0)

    def test_lowercase(self):
        ab = Alphabet.lowercase()
        assert ab.size == 26
        assert ab.id_of("z") == 25

    def test_contains(self):
        ab = Alphabet.from_symbols("xy")
        assert "x" in ab and "q" not in ab

    def test_len(self):
        assert len(Alphabet.from_symbols("xy")) == 2


class TestEncoding:
    def test_encode_sequence(self):
        ab = Alphabet.from_symbols("abc")
        np.testing.assert_array_equal(ab.encode("cab"), [2, 0, 1])

    def test_encode_unknown(self):
        with pytest.raises(KeyError, match="not in alphabet"):
            Alphabet.from_symbols("ab").encode("abc")

    def test_encode_text_contiguous_fast_path(self):
        ab = Alphabet.ascii(128)
        ids = ab.encode_text("Hi!")
        np.testing.assert_array_equal(ids, [72, 105, 33])

    def test_encode_text_out_of_range(self):
        with pytest.raises(KeyError):
            Alphabet.ascii(128).encode_text("é")

    def test_encode_text_noncontiguous(self):
        ab = Alphabet.from_symbols("ba")
        np.testing.assert_array_equal(ab.encode_text("ab"), [1, 0])

    def test_encode_text_noncontiguous_unknown(self):
        with pytest.raises(KeyError):
            Alphabet.from_symbols("ba").encode_text("c")

    def test_decode(self):
        ab = Alphabet.from_symbols("abc")
        assert ab.decode(np.array([2, 0])) == ["c", "a"]

    def test_decode_text(self):
        ab = Alphabet.from_symbols("abc")
        assert ab.decode_text(np.array([0, 1, 2])) == "abc"

    def test_roundtrip(self):
        ab = Alphabet.lowercase()
        text = "speculative"
        assert ab.decode_text(ab.encode_text(text)) == text
