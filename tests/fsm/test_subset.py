"""Tests for subset construction: NFA/DFA language equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fsm.alphabet import Alphabet
from repro.fsm.nfa import NFA
from repro.fsm.subset import subset_construction


def random_nfa(seed: int, num_states: int = 6, num_inputs: int = 2) -> NFA:
    rng = np.random.default_rng(seed)
    nfa = NFA(num_inputs=num_inputs)
    for _ in range(num_states):
        nfa.add_state()
    n_edges = int(rng.integers(num_states, 3 * num_states))
    for _ in range(n_edges):
        src = int(rng.integers(0, num_states))
        dst = int(rng.integers(0, num_states))
        sym = None if rng.random() < 0.2 else int(rng.integers(0, num_inputs))
        nfa.add_edge(src, sym, dst)
    nfa.accepting = {int(s) for s in rng.choice(num_states, size=2, replace=False)}
    return nfa


class TestSubsetConstruction:
    def test_start_is_zero(self):
        dfa = subset_construction(random_nfa(0))
        assert dfa.start == 0

    def test_complete_table(self):
        dfa = subset_construction(random_nfa(1))
        assert dfa.table.min() >= 0
        assert dfa.table.max() < dfa.num_states

    def test_alphabet_mismatch_rejected(self):
        with pytest.raises(ValueError, match="alphabet size"):
            subset_construction(random_nfa(0), alphabet=Alphabet.from_symbols("abc"))

    def test_alphabet_attached(self):
        ab = Alphabet.from_symbols("01")
        dfa = subset_construction(random_nfa(0), alphabet=ab)
        assert dfa.alphabet is ab

    def test_dead_state_when_nfa_dies(self):
        nfa = NFA(num_inputs=2)
        a, b = nfa.add_state(), nfa.add_state()
        nfa.add_edge(a, 0, b)
        nfa.accepting = {b}
        dfa = subset_construction(nfa)
        # symbol 1 from start must go to an explicit dead state
        dead = dfa.table[1, dfa.start]
        assert dfa.table[0, dead] == dead
        assert dfa.table[1, dead] == dead
        assert not dfa.accepting[dead]

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 1000), data=st.data())
    def test_language_equivalence(self, seed, data):
        nfa = random_nfa(seed)
        dfa = subset_construction(nfa)
        word = data.draw(st.lists(st.integers(0, 1), max_size=16))
        arr = np.array(word, dtype=np.int64)
        assert dfa.accepts(arr) == nfa.accepts(arr)

    def test_state_names_record_subsets(self):
        dfa = subset_construction(random_nfa(3))
        assert len(dfa.state_names) == dfa.num_states
        assert all(name.startswith("{") for name in dfa.state_names)
