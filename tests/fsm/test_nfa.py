"""Tests for repro.fsm.nfa."""

import numpy as np
import pytest

from repro.fsm.nfa import NFA


def small_nfa() -> NFA:
    """(0|01) over {0,1}: accepts '0' and '01'."""
    nfa = NFA(num_inputs=2)
    s, a, b, f = (nfa.add_state() for _ in range(4))
    nfa.start = s
    nfa.add_edge(s, 0, a)  # '0'
    nfa.add_edge(a, None, f)  # accept '0'
    nfa.add_edge(a, 1, b)  # '01'
    nfa.add_edge(b, None, f)
    nfa.accepting = {f}
    return nfa


class TestConstruction:
    def test_add_state_ids(self):
        nfa = NFA(num_inputs=2)
        assert [nfa.add_state() for _ in range(3)] == [0, 1, 2]

    def test_bad_num_inputs(self):
        with pytest.raises(ValueError):
            NFA(num_inputs=0)

    def test_add_edge_validates_states(self):
        nfa = NFA(num_inputs=2)
        nfa.add_state()
        with pytest.raises(ValueError, match="out of range"):
            nfa.add_edge(0, 0, 5)

    def test_add_edge_validates_symbol(self):
        nfa = NFA(num_inputs=2)
        nfa.add_state()
        with pytest.raises(ValueError, match="symbol"):
            nfa.add_edge(0, 3, 0)

    def test_add_edges_multiple(self):
        nfa = NFA(num_inputs=3)
        nfa.add_state(); nfa.add_state()
        nfa.add_edges(0, [0, 2], 1)
        assert nfa.transitions[0] == {0: {1}, 2: {1}}


class TestSemantics:
    def test_epsilon_closure_transitive(self):
        nfa = NFA(num_inputs=1)
        a, b, c = (nfa.add_state() for _ in range(3))
        nfa.add_edge(a, None, b)
        nfa.add_edge(b, None, c)
        assert nfa.epsilon_closure({a}) == {a, b, c}

    def test_epsilon_closure_no_edges(self):
        nfa = NFA(num_inputs=1)
        a = nfa.add_state()
        assert nfa.epsilon_closure({a}) == {a}

    def test_move(self):
        nfa = small_nfa()
        assert nfa.move(nfa.epsilon_closure({nfa.start}), 0) == {1}

    def test_accepts_zero(self):
        nfa = small_nfa()
        assert nfa.accepts(np.array([0]))

    def test_accepts_zero_one(self):
        assert small_nfa().accepts(np.array([0, 1]))

    def test_rejects_one(self):
        assert not small_nfa().accepts(np.array([1]))

    def test_rejects_empty(self):
        assert not small_nfa().accepts(np.zeros(0, dtype=int))

    def test_dead_after_no_transition(self):
        nfa = small_nfa()
        assert nfa.run(np.array([1, 0, 1])) == frozenset()
