"""Tests for FSM analysis utilities."""

import numpy as np
import pytest

from repro.apps.div import div7_dfa
from repro.fsm.analysis import (
    dynamic_state_frequency,
    reachable_states,
    state_convergence,
    static_state_frequency,
    stationary_distribution,
)
from repro.fsm.dfa import DFA
from tests.conftest import make_random_dfa, random_input


class TestStaticFrequency:
    def test_sums_to_table_size(self):
        dfa = make_random_dfa(6, 3, seed=0)
        assert static_state_frequency(dfa).sum() == dfa.table_entries

    def test_paper_figure1_example(self):
        # Figure 1b: states a and c appear 4 times each, b and d twice.
        trans = {
            ("a", "/"): "b", ("a", "*"): "a", ("a", "x"): "a",
            ("b", "/"): "b", ("b", "*"): "c", ("b", "x"): "a",
            ("c", "/"): "c", ("c", "*"): "d", ("c", "x"): "c",
            ("d", "/"): "a", ("d", "*"): "d", ("d", "x"): "c",
        }
        dfa = DFA.from_dict(trans, start="a", accepting=["a"])
        freq = static_state_frequency(dfa)
        assert sorted(freq.tolist(), reverse=True) == [4, 4, 2, 2]


class TestDynamicFrequency:
    def test_counts_sum_to_length(self):
        dfa = make_random_dfa(5, 2, seed=1)
        inp = random_input(2, 300, seed=2)
        assert dynamic_state_frequency(dfa, inp).sum() == 300

    def test_empty_input(self):
        dfa = make_random_dfa(5, 2, seed=1)
        assert dynamic_state_frequency(dfa, np.zeros(0, dtype=np.int32)).sum() == 0


class TestReachability:
    def test_start_always_reachable(self):
        dfa = make_random_dfa(6, 2, seed=5)
        assert reachable_states(dfa)[dfa.start]

    def test_unreachable_detected(self):
        table = np.array([[0, 2, 2]], dtype=np.int32)
        dfa = DFA(table=table, start=0, accepting=np.zeros(3, dtype=bool))
        mask = reachable_states(dfa)
        assert not mask[1] and not mask[2]  # state 0 self-loops only


class TestConvergence:
    def test_div7_never_converges(self):
        dfa = div7_dfa()
        inp = random_input(2, 200, seed=0)
        assert state_convergence(dfa, inp) == 7

    def test_constant_machine_converges_to_one(self):
        table = np.zeros((2, 4), dtype=np.int32)  # everything -> state 0
        dfa = DFA(table=table, start=0, accepting=np.zeros(4, dtype=bool))
        assert state_convergence(dfa, np.array([0, 1, 0])) == 1

    def test_window_limits(self):
        dfa = div7_dfa()
        inp = random_input(2, 100, seed=0)
        assert state_convergence(dfa, inp, window=0) == 7


class TestStationary:
    def test_valid_distribution(self):
        dfa = make_random_dfa(6, 3, seed=2)
        pi = stationary_distribution(dfa)
        assert pi.shape == (6,)
        assert pi.min() >= -1e-12
        assert pi.sum() == pytest.approx(1.0)

    def test_div7_uniform(self):
        pi = stationary_distribution(div7_dfa())
        np.testing.assert_allclose(pi, np.full(7, 1 / 7), atol=1e-6)

    def test_symbol_probs_shape_checked(self):
        with pytest.raises(ValueError):
            stationary_distribution(div7_dfa(), np.array([1.0]))

    def test_symbol_probs_nonnegative(self):
        with pytest.raises(ValueError):
            stationary_distribution(div7_dfa(), np.array([-1.0, 0.0]))

    def test_absorbing_state(self):
        table = np.array([[1, 1], [1, 1]], dtype=np.int32)  # 1 absorbs
        dfa = DFA(table=table, start=0, accepting=np.zeros(2, dtype=bool))
        pi = stationary_distribution(dfa)
        assert pi[1] == pytest.approx(1.0, abs=1e-6)
