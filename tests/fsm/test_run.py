"""Tests for the reference runners."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fsm.run import (
    run_all_starts,
    run_reference,
    run_reference_trace,
    run_segment,
)
from tests.conftest import make_random_dfa, random_input


class TestRunReference:
    def test_empty_input_returns_start(self):
        dfa = make_random_dfa(4, 2, seed=0)
        assert run_reference(dfa, np.zeros(0, dtype=np.int32)) == dfa.start

    def test_explicit_start(self):
        dfa = make_random_dfa(4, 2, seed=0)
        inp = random_input(2, 50, seed=1)
        assert run_reference(dfa, inp, start=2) == run_segment(dfa, inp, 2)

    def test_matches_dfa_run(self):
        dfa = make_random_dfa(5, 3, seed=7)
        inp = random_input(3, 200, seed=2)
        assert run_reference(dfa, inp) == dfa.run(inp)


class TestTrace:
    def test_trace_length(self):
        dfa = make_random_dfa(4, 2, seed=1)
        inp = random_input(2, 37, seed=3)
        assert run_reference_trace(dfa, inp).size == 37

    def test_trace_final_matches_run(self):
        dfa = make_random_dfa(4, 2, seed=1)
        inp = random_input(2, 37, seed=3)
        assert run_reference_trace(dfa, inp)[-1] == run_reference(dfa, inp)

    def test_trace_step_consistency(self):
        dfa = make_random_dfa(4, 2, seed=2)
        inp = random_input(2, 20, seed=4)
        trace = run_reference_trace(dfa, inp)
        state = dfa.start
        for i, a in enumerate(inp):
            state = dfa.step(state, int(a))
            assert trace[i] == state


class TestRunAllStarts:
    def test_shape(self):
        dfa = make_random_dfa(6, 2, seed=3)
        out = run_all_starts(dfa, random_input(2, 30, seed=5))
        assert out.shape == (6,)

    def test_empty_is_identity(self):
        dfa = make_random_dfa(6, 2, seed=3)
        np.testing.assert_array_equal(
            run_all_starts(dfa, np.zeros(0, dtype=np.int32)), np.arange(6)
        )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 200), start=st.integers(0, 5))
    def test_agrees_with_individual_runs(self, seed, start):
        dfa = make_random_dfa(6, 2, seed=seed)
        inp = random_input(2, 64, seed=seed + 1)
        assert run_all_starts(dfa, inp)[start] == run_reference(dfa, inp, start=start)

    def test_composition_property(self):
        # run over a+b == run over b starting from run over a
        dfa = make_random_dfa(5, 3, seed=9)
        a = random_input(3, 40, seed=1)
        b = random_input(3, 40, seed=2)
        fa = run_all_starts(dfa, a)
        fb = run_all_starts(dfa, b)
        fab = run_all_starts(dfa, np.concatenate([a, b]))
        np.testing.assert_array_equal(fab, fb[fa])
