"""Tests for DFA save/load."""

import numpy as np
import pytest

from repro.fsm.serialization import load_dfa, save_dfa
from tests.conftest import make_random_dfa, random_input


class TestRoundTrip:
    def test_plain_dfa(self, tmp_path):
        dfa = make_random_dfa(7, 3, seed=0)
        path = tmp_path / "machine.npz"
        save_dfa(dfa, path)
        loaded = load_dfa(path)
        np.testing.assert_array_equal(loaded.table, dfa.table)
        np.testing.assert_array_equal(loaded.accepting, dfa.accepting)
        assert loaded.start == dfa.start
        assert loaded.name == dfa.name

    def test_behaviour_preserved(self, tmp_path):
        dfa = make_random_dfa(9, 2, seed=3)
        path = tmp_path / "m.npz"
        save_dfa(dfa, path)
        loaded = load_dfa(path)
        inp = random_input(2, 500, seed=1)
        assert loaded.run(inp) == dfa.run(inp)

    def test_transducer(self, tmp_path):
        from repro.apps.huffman import HuffmanCode

        code = HuffmanCode.from_frequencies(np.array([5, 3, 2, 1]))
        dfa = code.decoder_dfa()
        path = tmp_path / "huff.npz"
        save_dfa(dfa, path)
        loaded = load_dfa(path)
        assert loaded.is_transducer
        np.testing.assert_array_equal(loaded.emit, dfa.emit)

    def test_alphabet_preserved(self, tmp_path):
        from repro.apps.div import div7_dfa

        dfa = div7_dfa()
        path = tmp_path / "div.npz"
        save_dfa(dfa, path)
        loaded = load_dfa(path)
        assert loaded.alphabet is not None
        assert loaded.alphabet.id_of(1) == 1

    def test_state_names_preserved(self, tmp_path):
        from repro.apps.html_tok import build_html_tokenizer

        dfa = build_html_tokenizer()
        path = tmp_path / "html.npz"
        save_dfa(dfa, path)
        loaded = load_dfa(path)
        assert loaded.state_names == dfa.state_names

    def test_char_alphabet_roundtrip(self, tmp_path):
        from repro.fsm.alphabet import Alphabet
        from repro.regex.compile import compile_search

        dfa = compile_search("ab", Alphabet.from_symbols("abc"))
        path = tmp_path / "re.npz"
        save_dfa(dfa, path)
        loaded = load_dfa(path)
        assert loaded.encode("abc").tolist() == [0, 1, 2]

    def test_bad_version_rejected(self, tmp_path):
        import json

        dfa = make_random_dfa(3, 2, seed=0)
        path = tmp_path / "m.npz"
        save_dfa(dfa, path)
        # tamper with the version
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            meta["format_version"] = 99
            arrays = {k: data[k] for k in data.files}
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_dfa(path)
