"""Smoke tests for the experiment harness (tiny inputs)."""

import pytest

from repro.bench.experiments import (
    ablation_check_crossover,
    ablation_eager_vs_delayed,
    fig5_state_frequency_cdf,
    fig6_success_rates,
    fig12_13_k_sweep,
    fig14_layout,
    fig15_hot_cache,
    scaling_figure,
    table3_applications,
    table4_huffman_inputs,
    table5_regexes,
)
from repro.bench.runner import BenchConfig, measure
from repro.bench.tables import format_table

N = 60_000  # tiny but large enough for meaningful rates


class TestTables:
    def test_table3(self):
        res = table3_applications(num_items=N)
        assert len(res.rows) == 5
        names = {r["application"] for r in res.rows}
        assert names == {"huffman", "regex1", "regex2", "html", "div7"}

    def test_table4(self):
        res = table4_huffman_inputs(chars_per_book=30_000)
        assert len(res.rows) == 5
        assert res.rows[-1]["text"] == "combined"
        for row in res.rows:
            assert 100 <= row["fsm_states"] <= 250

    def test_table5(self):
        res = table5_regexes()
        assert res.rows[0]["input_classes"] == 7
        assert res.rows[1]["input_classes"] == 3


class TestFigures:
    def test_fig5_cdf_monotone(self):
        res = fig5_state_frequency_cdf(num_items=N)
        shares = [r["cumulative_share"] for r in res.rows]
        assert shares == sorted(shares)
        assert shares[-1] == pytest.approx(1.0, abs=1e-6)

    def test_fig6_div7_linear(self):
        res = fig6_success_rates(num_items=N, ks=(1, 2, 4))
        div7 = {r["k"]: r["success_rate"] for r in res.rows
                if r["application"] == "div7"}
        assert div7[1] == pytest.approx(1 / 7, abs=0.05)
        assert div7[4] == pytest.approx(4 / 7, abs=0.08)

    def test_scaling_figure_rows(self):
        res = scaling_figure("div7", num_items=N)
        series = {r["series"] for r in res.rows}
        assert series == {"spec-N/sequential", "spec-N/parallel"}
        assert len(res.rows) == 6

    def test_scaling_parallel_monotone(self):
        res = scaling_figure("div7", num_items=N)
        par = [r["speedup"] for r in res.rows if r["series"] == "spec-N/parallel"]
        assert par[0] < par[1] < par[2]

    def test_k_sweep(self):
        res = fig12_13_k_sweep("regex2", num_items=N, ks=(1, 4))
        assert [r["k"] for r in res.rows] == [1, 4]
        assert res.rows[0]["speedup"] > res.rows[1]["speedup"]  # best k = 1

    def test_fig14_gains_positive(self):
        res = fig14_layout(num_items=200_000)
        for row in res.rows:
            assert row["gain"] > 1.2
        # most applications see the full coalescing effect
        assert sum(row["gain"] > 3.0 for row in res.rows) >= 3

    def test_fig15_cache_helps(self):
        res = fig15_hot_cache(num_items=N)
        for row in res.rows:
            assert row["gain"] > 1.0
            assert row["hit_rate"] > 0.5


class TestAblations:
    def test_check_crossover_rule(self):
        res = ablation_check_crossover(num_items=N, ks=(4, 48))
        by_k = {r["k"]: r for r in res.rows}
        assert by_k[4]["winner"] == "nested"
        assert by_k[48]["winner"] == "hash"

    def test_crossover_near_paper_threshold(self):
        res = ablation_check_crossover(num_items=N, ks=(8, 16))
        by_k = {r["k"]: r for r in res.rows}
        assert by_k[8]["winner"] == "nested"
        assert by_k[16]["winner"] == "hash"

    def test_eager_wastes_work(self):
        res = ablation_eager_vs_delayed(num_items=N)
        for row in res.rows:
            assert row["waste_ratio"] >= 1.0


class TestRunnerAndTables:
    def test_measure_returns_fields(self):
        m = measure(BenchConfig(app="div7", k=None, num_blocks=20), num_items=N)
        assert m.speedup > 0
        assert 0 <= m.success_rate <= 1

    def test_config_label(self):
        c = BenchConfig(app="div7", k=None, num_blocks=20)
        assert c.label() == "div7/spec-N/parallel/B20"

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}],
                            title="t")
        assert "t" in text and "a" in text
        assert len(text.splitlines()) == 5

    def test_format_empty(self):
        assert "(no rows)" in format_table([])

    def test_result_to_text(self):
        res = table5_regexes()
        text = res.to_text()
        assert "table5" in text
