"""Tests for ASCII charts and the consolidated report builder."""

import pytest

from repro.bench.plots import bar_chart, grouped_bar_chart
from repro.bench.report import _chart_for, build_report
from repro.bench.runner import ExperimentResult


class TestBarChart:
    def test_scaling(self):
        out = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title_and_unit(self):
        out = bar_chart([("a", 1.0)], title="t", unit="x")
        assert out.startswith("t\n")
        assert out.rstrip().endswith("1x")

    def test_empty(self):
        assert "(no data)" in bar_chart([])

    def test_zero_values(self):
        out = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "#" not in out


class TestGroupedChart:
    ROWS = [
        {"series": "s1", "blocks": 20, "speedup": 10.0},
        {"series": "s1", "blocks": 40, "speedup": 20.0},
        {"series": "s2", "blocks": 20, "speedup": 5.0},
    ]

    def test_groups_present(self):
        out = grouped_bar_chart(
            self.ROWS, group_key="series", label_key="blocks", value_key="speedup"
        )
        assert "[s1]" in out and "[s2]" in out

    def test_global_scale(self):
        out = grouped_bar_chart(
            self.ROWS, group_key="series", label_key="blocks",
            value_key="speedup", width=8,
        )
        # s2's 5.0 scales against the global max 20.0 -> 2 marks
        s2_line = out.splitlines()[-1]
        assert s2_line.count("#") == 2

    def test_empty(self):
        assert "(no data)" in grouped_bar_chart(
            [], group_key="a", label_key="b", value_key="c"
        )


class TestChartSelection:
    def test_scaling_rows_get_grouped_chart(self):
        res = ExperimentResult("figX", "t", rows=list(TestGroupedChart.ROWS))
        assert "[s1]" in _chart_for(res)

    def test_k_sweep_gets_bar_chart(self):
        res = ExperimentResult(
            "figY", "t", rows=[{"k": 1, "speedup": 2.0}, {"k": 2, "speedup": 1.0}]
        )
        out = _chart_for(res)
        assert "k=1" in out

    def test_tables_get_no_chart(self):
        res = ExperimentResult("tableZ", "t", rows=[{"application": "x"}])
        assert _chart_for(res) == ""


@pytest.mark.slow
class TestReport:
    def test_build_report_smoke(self):
        # tiny inputs: just verify the document assembles with all sections
        report = build_report(num_items=30_000)
        assert report.startswith("# Reproduction report")
        assert report.count("## ") >= 18
        assert "fig7" in report and "table3" in report


class TestProfileMode:
    def test_run_profile_artifacts_and_coverage(self, tmp_path):
        from repro.bench.profile import run_profile
        from repro.obs.export import load_run_trace

        text, wall_s, json_path, chrome_path = run_profile(
            "div7", num_items=30_000, num_blocks=2, threads_per_block=64,
            out_dir=tmp_path,
        )
        assert json_path.exists() and chrome_path.exists()
        assert "engine.speculate" in text
        assert "stages total" in text
        # Acceptance criterion: stage spans cover >= 90% of measured wall.
        line = next(ln for ln in text.splitlines() if "% of measured wall time" in ln)
        pct = float(line.split("cover ")[1].split("%")[0])
        assert pct >= 90.0
        # The persisted RunTrace round-trips and carries the run metadata.
        loaded = load_run_trace(json_path)
        assert loaded.meta["app"] == "div7"
        assert loaded.find("engine.merge")
        # The Chrome trace is valid JSON with only non-negative X events.
        import json as _json
        events = _json.loads(chrome_path.read_text())["traceEvents"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0
                   for e in events if e["ph"] == "X")

    def test_cli_profile_flag(self, tmp_path, capsys):
        from repro.bench.report import main

        rc = main(["--profile", "div7", "--items", "20000",
                   "--profile-out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine.speculate" in out
        assert "wrote" in out
