"""Tests for chunk planning and the layout transformation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.workloads.chunking import plan_chunks, transform_layout


class TestPlanChunks:
    def test_even_split(self):
        plan = plan_chunks(12, 4)
        np.testing.assert_array_equal(plan.lengths, [3, 3, 3, 3])
        np.testing.assert_array_equal(plan.starts, [0, 3, 6, 9])

    def test_ragged_split(self):
        plan = plan_chunks(10, 4)
        np.testing.assert_array_equal(plan.lengths, [3, 3, 2, 2])
        assert plan.min_len == 2 and plan.max_len == 3 and plan.num_long == 2

    def test_more_chunks_than_items(self):
        plan = plan_chunks(3, 5)
        np.testing.assert_array_equal(plan.lengths, [1, 1, 1, 0, 0])

    def test_empty_input(self):
        plan = plan_chunks(0, 4)
        assert plan.min_len == 0 and plan.max_len == 0

    def test_boundaries(self):
        plan = plan_chunks(10, 3)
        np.testing.assert_array_equal(plan.boundaries, [0, 4, 7, 10])

    def test_chunk_slice(self):
        plan = plan_chunks(10, 3)
        data = np.arange(10)
        parts = [data[plan.chunk_slice(c)] for c in range(3)]
        np.testing.assert_array_equal(np.concatenate(parts), data)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            plan_chunks(-1, 2)
        with pytest.raises(ValueError):
            plan_chunks(10, 0)

    @given(n=st.integers(0, 500), c=st.integers(1, 40))
    def test_partition_property(self, n, c):
        plan = plan_chunks(n, c)
        assert plan.lengths.sum() == n
        assert plan.lengths.max() - plan.lengths.min() <= 1
        # longer chunks first
        diffs = np.diff(plan.lengths)
        assert np.all(diffs <= 0)


class TestTransformLayout:
    def test_interleave_values(self):
        data = np.arange(8, dtype=np.int32)
        plan = plan_chunks(8, 2)  # chunks [0..3], [4..7]
        t = transform_layout(data, plan)
        np.testing.assert_array_equal(t.main[:, 0], [0, 1, 2, 3])
        np.testing.assert_array_equal(t.main[:, 1], [4, 5, 6, 7])
        assert t.tail.size == 0

    def test_ragged_tail(self):
        data = np.arange(7, dtype=np.int32)
        plan = plan_chunks(7, 3)  # lengths 3,2,2
        t = transform_layout(data, plan)
        assert t.main.shape == (2, 3)
        np.testing.assert_array_equal(t.tail, [2])  # third item of chunk 0

    def test_contiguous_rows(self):
        data = np.arange(100, dtype=np.int32)
        t = transform_layout(data, plan_chunks(100, 10))
        assert t.main.flags.c_contiguous

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            transform_layout(np.arange(5), plan_chunks(6, 2))

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            transform_layout(np.ones((2, 3)), plan_chunks(6, 2))

    @given(n=st.integers(0, 300), c=st.integers(1, 20))
    def test_is_permutation(self, n, c):
        data = np.arange(n, dtype=np.int64)
        plan = plan_chunks(n, c)
        t = transform_layout(data, plan)
        recovered = np.concatenate([t.main.T.ravel(), t.tail])
        assert sorted(recovered.tolist()) == data.tolist()

    def test_step_rows_match_natural_gather(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 100, size=53).astype(np.int32)
        plan = plan_chunks(53, 7)
        t = transform_layout(data, plan)
        for j in range(plan.min_len):
            np.testing.assert_array_equal(t.main[j], data[plan.starts + j])
