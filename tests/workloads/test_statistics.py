"""Statistical validation of the workload generators (scipy-based).

The substitution argument in DESIGN.md rests on the synthetic inputs having
the right *statistics* (frequency skew, uniformity); these tests check the
distributions directly instead of spot values.
"""

import numpy as np
from scipy import stats

from repro.apps.div import div7_dfa
from repro.fsm.analysis import dynamic_state_frequency, stationary_distribution
from repro.workloads.binary import random_bits
from repro.workloads.text import ENGLISH_CHAR_WEIGHTS, synthetic_book


class TestTextStatistics:
    def test_head_frequencies_track_weights(self):
        book = synthetic_book(200_000, rng=0)
        counts = np.bincount(book, minlength=256).astype(float)
        # Spearman correlation between configured weights and observed
        # counts over the head characters must be strong.
        head = [ord(c) for c in ENGLISH_CHAR_WEIGHTS]
        weights = np.array(list(ENGLISH_CHAR_WEIGHTS.values()))
        rho, _ = stats.spearmanr(weights, counts[head])
        assert rho > 0.95

    def test_head_chi_square_consistent(self):
        # the empirical head distribution is consistent with the configured
        # one (chi-square over the 20 most probable characters)
        book = synthetic_book(300_000, rng=1)
        counts = np.bincount(book, minlength=256).astype(float)
        items = sorted(ENGLISH_CHAR_WEIGHTS.items(), key=lambda kv: -kv[1])[:20]
        obs = np.array([counts[ord(c)] for c, _ in items])
        probs = np.array([w for _, w in items])
        exp = probs / probs.sum() * obs.sum()
        chi2 = ((obs - exp) ** 2 / exp).sum()
        # dof=19; 99.9th percentile ~ 43.8. Allow generous slack for the
        # tail mass the head shares with rare symbols.
        assert chi2 < 80

    def test_tail_is_long_and_thin(self):
        book = synthetic_book(400_000, rng=2)
        counts = np.bincount(book, minlength=256)
        head = {ord(c) for c in ENGLISH_CHAR_WEIGHTS}
        tail_counts = np.array(
            [c for v, c in enumerate(counts) if v not in head and c > 0]
        )
        assert tail_counts.size > 60  # many distinct rare symbols...
        assert tail_counts.sum() / counts.sum() < 0.02  # ...tiny total mass


class TestBinaryStatistics:
    def test_unbiased_bits(self):
        bits = random_bits(100_000, rng=3)
        # two-sided binomial test at p=0.5
        res = stats.binomtest(int(bits.sum()), bits.size, 0.5)
        assert res.pvalue > 1e-4

    def test_no_serial_correlation(self):
        bits = random_bits(100_000, rng=4).astype(float)
        r = np.corrcoef(bits[:-1], bits[1:])[0, 1]
        assert abs(r) < 0.02


class TestStationaryAgreement:
    def test_div7_occupancy_uniform(self):
        dfa = div7_dfa()
        freq = dynamic_state_frequency(dfa, random_bits(70_000, rng=5))
        chi2, p = stats.chisquare(freq)
        assert p > 1e-4  # consistent with the uniform stationary law

    def test_random_dfa_occupancy_matches_power_iteration(self):
        from tests.conftest import make_random_dfa, random_input

        dfa = make_random_dfa(8, 2, seed=6)
        inp = random_input(2, 120_000, seed=7)
        measured = dynamic_state_frequency(dfa, inp).astype(float)
        measured /= measured.sum()
        predicted = stationary_distribution(dfa)
        # total-variation distance small for an ergodic chain
        tv = 0.5 * np.abs(measured - predicted).sum()
        assert tv < 0.02
