"""Tests for workload generators (text, HTML, binary)."""

import numpy as np
import pytest

from repro.workloads.binary import random_bits, random_symbols
from repro.workloads.html import synthetic_page, synthetic_pages
from repro.workloads.text import random_lowercase, synthetic_book, synthetic_library


class TestBinary:
    def test_bits_range(self):
        bits = random_bits(1000, rng=0)
        assert set(np.unique(bits)) <= {0, 1}

    def test_bits_bias(self):
        bits = random_bits(20000, p_one=0.9, rng=0)
        assert 0.85 < bits.mean() < 0.95

    def test_bits_deterministic(self):
        np.testing.assert_array_equal(random_bits(100, rng=5), random_bits(100, rng=5))

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            random_bits(-1)
        with pytest.raises(ValueError):
            random_bits(10, p_one=1.5)

    def test_symbols_uniform(self):
        s = random_symbols(1000, 5, rng=0)
        assert s.min() >= 0 and s.max() < 5

    def test_symbols_probs(self):
        s = random_symbols(10000, 3, probs=np.array([0.0, 0.0, 1.0]), rng=0)
        assert (s == 2).all()

    def test_symbols_probs_validation(self):
        with pytest.raises(ValueError):
            random_symbols(10, 3, probs=np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            random_symbols(10, 2, probs=np.array([-1.0, 2.0]))


class TestText:
    def test_book_length_and_range(self):
        book = synthetic_book(5000, rng=0)
        assert book.shape == (5000,)
        assert book.min() >= 0 and book.max() < 256

    def test_book_skewed(self):
        book = synthetic_book(50_000, rng=0)
        counts = np.bincount(book, minlength=256)
        # space is the most frequent character in English-like text
        assert counts.argmax() == ord(" ")

    def test_book_distinct_symbols_in_huffman_range(self):
        book = synthetic_book(500_000, rng=0)
        distinct = np.unique(book).size
        assert 150 <= distinct <= 230  # Table 4 ballpark

    def test_book_deterministic(self):
        np.testing.assert_array_equal(
            synthetic_book(1000, rng=3), synthetic_book(1000, rng=3)
        )

    def test_library_variety(self):
        books = synthetic_library(4, 30_000, rng=0)
        sizes = [np.unique(b).size for b in books]
        assert len(set(sizes)) > 1  # books differ in symbol counts

    def test_lowercase(self):
        text = random_lowercase(1000, rng=0)
        assert text.min() >= 0 and text.max() < 26

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_book(-1)
        with pytest.raises(ValueError):
            random_lowercase(-1)


class TestHtml:
    def test_page_structure(self):
        page = synthetic_page(3000, rng=0)
        assert page.startswith("<!DOCTYPE")
        assert page.endswith("</body></html>")
        assert len(page) >= 3000

    def test_page_tags_balanced(self):
        # Every tag the generator opens it eventually closes, so start-tag
        # and end-tag token counts must be equal (self-closing counted apart).
        from repro.apps.html_tok import TOK_END_TAG, TOK_START_TAG, reference_tokenize

        page = synthetic_page(5000, rng=1)
        tokens = [t for _, t in reference_tokenize(page)]
        assert tokens.count(TOK_START_TAG) == tokens.count(TOK_END_TAG)

    def test_page_ascii_only(self):
        page = synthetic_page(4000, rng=2)
        assert all(ord(c) < 128 for c in page)

    def test_pages_total(self):
        text = synthetic_pages(10_000, page_chars=2000, rng=0)
        assert len(text) >= 10_000

    def test_pages_deterministic(self):
        assert synthetic_pages(5000, rng=4) == synthetic_pages(5000, rng=4)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_page(-1)
        with pytest.raises(ValueError):
            synthetic_pages(-1)
