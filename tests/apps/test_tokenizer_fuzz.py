"""Hypothesis fuzzing: tokenizer FSMs vs their reference implementations.

The table builders and the hand-written per-character references are
independent encodings of the same rules; fuzzing over adversarial
character soups (heavy in the structural characters) hunts for rule
mismatches that curated cases miss.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.csv_tok import build_csv_tokenizer, reference_tokenize_csv
from repro.apps.html_tok import build_html_tokenizer, reference_tokenize
from repro.fsm.alphabet import Alphabet

AB = Alphabet.ascii(128)

# Alphabets biased toward the structural characters of each format.
html_soup = st.text(alphabet="<>!-dD&;#xX/='\"ab 1\n", max_size=60)
csv_soup = st.text(alphabet='",\nab1 ', max_size=60)


def run_transducer(dfa, text: str) -> list[tuple[int, int]]:
    ids = AB.encode_text(text)
    state = dfa.start
    out = []
    for i, a in enumerate(ids):
        e = dfa.emit[a, state]
        state = dfa.table[a, state]
        if e >= 0:
            out.append((i, int(e)))
    return out


class TestHtmlFuzz:
    @settings(max_examples=300, deadline=None)
    @given(text=html_soup)
    def test_fsm_equals_reference(self, text):
        dfa = build_html_tokenizer()
        assert run_transducer(dfa, text) == reference_tokenize(text)

    @settings(max_examples=100, deadline=None)
    @given(prefix=html_soup, suffix=html_soup)
    def test_tokenization_is_prefix_stable(self, prefix, suffix):
        # tokens of `prefix` are a prefix of tokens of `prefix + suffix`
        dfa = build_html_tokenizer()
        a = run_transducer(dfa, prefix)
        b = run_transducer(dfa, prefix + suffix)
        assert b[: len(a)] == a


class TestCsvFuzz:
    @settings(max_examples=300, deadline=None)
    @given(text=csv_soup)
    def test_fsm_equals_reference(self, text):
        dfa = build_csv_tokenizer()
        assert run_transducer(dfa, text) == reference_tokenize_csv(text)

    @settings(max_examples=100, deadline=None)
    @given(text=csv_soup)
    def test_engine_recovers_same_tokens(self, text):
        import repro

        if not text:
            return
        dfa = build_csv_tokenizer()
        ids = AB.encode_text(text).astype(np.int32)
        r = repro.run_speculative(
            dfa, ids, k=2, num_blocks=1, threads_per_block=32, lookback=2,
            collect=("emissions",), price=False,
        )
        positions, kinds = r.emissions
        got = list(zip(positions.tolist(), kinds.tolist()))
        assert got == reference_tokenize_csv(text)
