"""The vectorized Huffman encoder vs a naive string-join encoder."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.huffman import HuffmanCode


def naive_encode(code: HuffmanCode, data: np.ndarray) -> np.ndarray:
    book = code.codebook()
    bits = "".join(book[int(s)] for s in data)
    return np.frombuffer(bits.encode(), dtype=np.uint8) - ord("0")


class TestEncoderEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        data=st.lists(st.integers(0, 9), min_size=0, max_size=300),
        seed=st.integers(0, 50),
    )
    def test_vectorized_equals_naive(self, data, seed):
        freqs = np.random.default_rng(seed).integers(1, 100, size=10)
        code = HuffmanCode.from_frequencies(freqs)
        arr = np.array(data, dtype=np.int64)
        fast = code.encode(arr)
        slow = naive_encode(code, arr)
        np.testing.assert_array_equal(fast, slow)

    def test_large_input_stays_exact(self):
        rng = np.random.default_rng(0)
        freqs = rng.integers(1, 1000, size=64)
        code = HuffmanCode.from_frequencies(freqs)
        data = rng.integers(0, 64, size=100_000)
        fast = code.encode(data)
        assert fast.size == code.encoded_length(data)
        np.testing.assert_array_equal(code.decode_reference(fast), data)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_optimality_vs_uniform_code(self, seed):
        # Huffman never does worse than the fixed-length code.
        rng = np.random.default_rng(seed)
        n_sym = int(rng.integers(2, 32))
        freqs = rng.integers(1, 100, size=n_sym)
        code = HuffmanCode.from_frequencies(freqs)
        data = rng.integers(0, n_sym, size=2000)
        fixed_bits = int(np.ceil(np.log2(n_sym)))
        assert code.encoded_length(data) <= max(1, fixed_bits) * data.size + data.size
        # and entropy lower-bounds it (within 1 bit/symbol)
        p = np.bincount(data, minlength=n_sym) / data.size
        p = p[p > 0]
        entropy = float(-(p * np.log2(p)).sum())
        assert code.encoded_length(data) >= entropy * data.size * 0.99 - 8
