"""Tests for the CSV tokenizer FSM."""

import numpy as np
import pytest

import repro
from repro.apps.csv_tok import (
    FIELD_SEP,
    RECORD_SEP,
    build_csv_tokenizer,
    reference_tokenize_csv,
    synthetic_csv,
)
from repro.fsm.alphabet import Alphabet
from repro.fsm.run import run_reference

AB = Alphabet.ascii(128)


def fsm_tokenize(text: str) -> list[tuple[int, int]]:
    dfa = build_csv_tokenizer()
    ids = AB.encode_text(text)
    state = dfa.start
    out = []
    for i, a in enumerate(ids):
        e = dfa.emit[a, state]
        state = dfa.table[a, state]
        if e >= 0:
            out.append((i, int(e)))
    return out


class TestTokenizer:
    def test_shape(self):
        dfa = build_csv_tokenizer()
        assert dfa.num_states == 4 and dfa.num_inputs == 128

    def test_simple_row(self):
        assert fsm_tokenize("a,b\n") == [(1, FIELD_SEP), (3, RECORD_SEP)]

    def test_quoted_comma_is_data(self):
        text = '"a,b",c\n'
        assert fsm_tokenize(text) == [(5, FIELD_SEP), (7, RECORD_SEP)]

    def test_quoted_newline_is_data(self):
        text = '"a\nb",c\n'
        assert fsm_tokenize(text) == [(5, FIELD_SEP), (7, RECORD_SEP)]

    def test_escaped_quote(self):
        text = '"a""b",c\n'
        assert fsm_tokenize(text) == [(6, FIELD_SEP), (8, RECORD_SEP)]

    def test_empty_fields(self):
        assert fsm_tokenize(",,\n") == [
            (0, FIELD_SEP), (1, FIELD_SEP), (2, RECORD_SEP)
        ]

    def test_quote_mid_unquoted_is_data(self):
        text = 'a"b,c\n'
        assert fsm_tokenize(text) == [(3, FIELD_SEP), (5, RECORD_SEP)]

    CASES = [
        "",
        "plain\n",
        "a,b,c\nd,e,f\n",
        '"x","y"\n',
        '"","",""\n',
        '"a""",“oops trailing"\n'.replace("“", '"'),
        'junk"after,ok\n',
        "unterminated,row",
        '"open quoted never closes, even\nacross lines',
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_matches_reference(self, text):
        assert fsm_tokenize(text) == reference_tokenize_csv(text)

    def test_random_csv_matches_reference(self):
        for seed in range(4):
            text = synthetic_csv(3000, rng=seed)
            assert fsm_tokenize(text) == reference_tokenize_csv(text)

    def test_accepting_between_records(self):
        dfa = build_csv_tokenizer()
        assert dfa.accepts(AB.encode_text("a,b\n"))
        assert not dfa.accepts(AB.encode_text('"open'))


class TestWorkload:
    def test_size(self):
        text = synthetic_csv(5000, rng=1)
        assert len(text) >= 5000
        assert text.endswith("\n")

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_csv(-1)
        with pytest.raises(ValueError):
            synthetic_csv(10, columns=0)
        with pytest.raises(ValueError):
            synthetic_csv(10, quoted_fraction=1.5)

    def test_deterministic(self):
        assert synthetic_csv(1000, rng=2) == synthetic_csv(1000, rng=2)


class TestThroughEngine:
    def test_engine_tokens_match_reference(self):
        text = synthetic_csv(40_000, rng=3)
        dfa = build_csv_tokenizer()
        ids = AB.encode_text(text).astype(np.int32)
        r = repro.run_speculative(
            dfa, ids, k=2, num_blocks=2, threads_per_block=64, lookback=32,
            collect=("emissions",), price=False,
        )
        positions, kinds = r.emissions
        got = list(zip(positions.tolist(), kinds.tolist()))
        assert got == reference_tokenize_csv(text)
        assert r.final_state == run_reference(dfa, ids)

    def test_quoted_state_speculation(self):
        # heavy quoting: boundaries often fall inside quoted fields; the
        # engine must still be exact, and k=2 covers both phase guesses
        text = synthetic_csv(30_000, quoted_fraction=0.9, rng=4)
        dfa = build_csv_tokenizer()
        ids = AB.encode_text(text).astype(np.int32)
        r = repro.run_speculative(dfa, ids, k=2, num_blocks=1,
                                  threads_per_block=128, lookback=8,
                                  price=False)
        assert r.final_state == run_reference(dfa, ids)
