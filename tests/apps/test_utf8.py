"""Tests for the UTF-8 validator FSM (oracle: Python's bytes.decode)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.apps.utf8 import encode_utf8_workload, utf8_validator_dfa
from repro.fsm.run import run_reference


def is_valid_utf8(data: bytes) -> bool:
    try:
        data.decode("utf-8")
        return True
    except UnicodeDecodeError:
        return False


@pytest.fixture(scope="module")
def dfa():
    return utf8_validator_dfa()


class TestValidator:
    def test_shape(self, dfa):
        assert dfa.num_states == 9
        assert dfa.num_inputs == 256

    def test_ascii(self, dfa):
        assert dfa.accepts(np.frombuffer(b"hello", dtype=np.uint8).astype(np.int32))

    def test_two_byte(self, dfa):
        assert dfa.accepts(np.frombuffer("é".encode(), dtype=np.uint8).astype(np.int32))

    def test_three_byte(self, dfa):
        assert dfa.accepts(np.frombuffer("€".encode(), dtype=np.uint8).astype(np.int32))

    def test_four_byte(self, dfa):
        assert dfa.accepts(np.frombuffer("🎉".encode(), dtype=np.uint8).astype(np.int32))

    def test_bare_continuation_rejected(self, dfa):
        assert not dfa.accepts(np.array([0x80], dtype=np.int32))

    def test_overlong_two_byte_rejected(self, dfa):
        # 0xC0 0x80 is an overlong encoding of NUL
        assert not dfa.accepts(np.array([0xC0, 0x80], dtype=np.int32))

    def test_overlong_three_byte_rejected(self, dfa):
        # 0xE0 0x80 0x80 overlong
        assert not dfa.accepts(np.array([0xE0, 0x80, 0x80], dtype=np.int32))

    def test_surrogate_rejected(self, dfa):
        # U+D800 would encode as ED A0 80
        assert not dfa.accepts(np.array([0xED, 0xA0, 0x80], dtype=np.int32))

    def test_above_max_rejected(self, dfa):
        # U+110000 would start F4 90
        assert not dfa.accepts(np.array([0xF4, 0x90, 0x80, 0x80], dtype=np.int32))

    def test_truncated_not_accepting(self, dfa):
        seq = np.frombuffer("€".encode(), dtype=np.uint8).astype(np.int32)
        assert not dfa.accepts(seq[:-1])

    def test_reject_absorbing(self, dfa):
        bad_then_good = np.concatenate(
            [np.array([0xFF], dtype=np.int32),
             np.frombuffer(b"ok", dtype=np.uint8).astype(np.int32)]
        )
        assert not dfa.accepts(bad_then_good)

    @settings(max_examples=200, deadline=None)
    @given(data=st.binary(max_size=24))
    def test_agrees_with_python_decoder(self, dfa, data):
        ids = np.frombuffer(data, dtype=np.uint8).astype(np.int32)
        assert dfa.accepts(ids) == is_valid_utf8(data)

    @settings(max_examples=100, deadline=None)
    @given(text=st.text(max_size=12))
    def test_all_valid_text_accepted(self, dfa, text):
        data = text.encode("utf-8")
        ids = np.frombuffer(data, dtype=np.uint8).astype(np.int32)
        assert dfa.accepts(ids)


class TestWorkload:
    def test_clean_stream_valid(self, dfa):
        stream = encode_utf8_workload(50_000, rng=0)
        assert dfa.accepts(stream)

    def test_corrupted_stream_invalid(self, dfa):
        stream = encode_utf8_workload(50_000, corruption_rate=0.05, rng=0)
        assert not dfa.accepts(stream)

    def test_validation(self):
        with pytest.raises(ValueError):
            encode_utf8_workload(-1)
        with pytest.raises(ValueError):
            encode_utf8_workload(10, corruption_rate=2.0)

    def test_through_engine(self, dfa):
        stream = encode_utf8_workload(80_000, rng=1)
        r = repro.run_speculative(dfa, stream, k=2, num_blocks=2,
                                  threads_per_block=64, lookback=8, price=False)
        assert r.final_state == run_reference(dfa, stream)
        # look-back disambiguates continuation position: success is high
        assert r.success_rate > 0.95

    def test_multibyte_boundary_speculation(self, dfa):
        # chunks landing mid-sequence must still merge correctly
        stream = encode_utf8_workload(9_973, rng=2)  # prime-ish size
        r = repro.run_speculative(dfa, stream, k=3, num_blocks=1,
                                  threads_per_block=96, lookback=4, price=False)
        assert r.final_state == run_reference(dfa, stream)
