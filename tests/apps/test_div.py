"""Tests for divisibility FSMs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.div import div7_dfa, div_dfa, residues_converge
from repro.fsm.run import run_all_starts


class TestDiv7:
    def test_shape(self):
        dfa = div7_dfa()
        assert dfa.num_states == 7
        assert dfa.num_inputs == 2

    def test_known_values(self):
        dfa = div7_dfa()
        # 14 = 0b1110 is divisible by 7
        assert dfa.accepts(np.array([1, 1, 1, 0]))
        # 15 = 0b1111 is not
        assert not dfa.accepts(np.array([1, 1, 1, 1]))

    def test_empty_accepted(self):
        assert div7_dfa().accepts(np.zeros(0, dtype=int))

    def test_no_convergence(self):
        # For any input symbol, the 7 states map to 7 distinct states.
        dfa = div7_dfa()
        for b in (0, 1):
            assert np.unique(dfa.table[b]).size == 7

    def test_permutation_over_any_word(self):
        rng = np.random.default_rng(0)
        word = rng.integers(0, 2, size=100)
        assert np.unique(run_all_starts(div7_dfa(), word)).size == 7


class TestDivGeneral:
    @settings(max_examples=60, deadline=None)
    @given(
        m=st.integers(1, 23),
        base=st.integers(2, 8),
        digits=st.lists(st.integers(0, 7), max_size=16),
    )
    def test_matches_arithmetic(self, m, base, digits):
        digits = [d % base for d in digits]
        dfa = div_dfa(m, base)
        value = 0
        for d in digits:
            value = value * base + d
        assert dfa.accepts(np.array(digits, dtype=int)) == (value % m == 0)

    def test_state_is_residue(self):
        dfa = div_dfa(5)
        # after reading 0b1101 = 13, state must be 13 % 5 = 3
        assert dfa.run(np.array([1, 1, 0, 1])) == 3

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            div_dfa(0)

    def test_bad_base(self):
        with pytest.raises(ValueError):
            div_dfa(7, base=1)

    def test_residues_converge(self):
        assert not residues_converge(7, 2)  # gcd(2,7)=1: no convergence
        assert residues_converge(6, 2)  # gcd(2,6)=2: convergence possible

    def test_convergent_machine_loses_states(self):
        dfa = div_dfa(6, 2)
        word = np.random.default_rng(1).integers(0, 2, size=50)
        assert np.unique(run_all_starts(dfa, word)).size < 6
