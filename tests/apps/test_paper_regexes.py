"""Tests for the paper's two regular expressions."""

import numpy as np
import pytest

from repro.apps.paper_regexes import (
    REGEX1_PATTERN,
    REGEX2_PATTERN,
    build_regex1,
    build_regex2,
    regex1_alphabet,
    regex2_alphabet,
)
from repro.fsm.run import run_reference_trace


def subsequence(word: str, text: str) -> bool:
    it = iter(text)
    return all(c in it for c in word)


class TestRegex1:
    def test_input_classes(self):
        dfa, class_of = build_regex1()
        assert dfa.num_inputs == 7
        assert class_of is not None and class_of.shape == (26,)

    def test_uncompressed(self):
        dfa, class_of = build_regex1(compressed=False)
        assert dfa.num_inputs == 26
        assert class_of is None

    def test_minimized_smaller(self):
        unmin, _ = build_regex1(minimize=False)
        mini, _ = build_regex1(minimize=True)
        assert mini.num_states < unmin.num_states

    @pytest.mark.parametrize(
        "text,ends_with_match",
        [
            ("like", True),
            ("apple", True),
            ("lxxixxkxxe", True),
            ("axpxpxlxe", True),
            ("lik", False),
            ("elki", False),  # wrong order
            ("likex", False),  # match must end at the cursor
        ],
    )
    def test_search_semantics(self, text, ends_with_match):
        dfa, class_of = build_regex1()
        ab = regex1_alphabet()
        ids = class_of[ab.encode_text(text)]
        assert bool(dfa.accepting[dfa.run(ids)]) == ends_with_match

    def test_match_positions_vs_subsequence(self):
        dfa, class_of = build_regex1()
        ab = regex1_alphabet()
        rng = np.random.default_rng(1)
        for _ in range(20):
            text = "".join(rng.choice(list("likeap" + "xyz"), size=30))
            ids = class_of[ab.encode_text(text)]
            trace = run_reference_trace(dfa, ids)
            for pos in range(len(text)):
                prefix = text[: pos + 1]
                want = (
                    subsequence("like", prefix) and prefix.endswith("e")
                    and subsequence("lik", prefix[:-1])
                ) or (
                    subsequence("apple", prefix) and prefix.endswith("e")
                    and subsequence("appl", prefix[:-1])
                )
                assert bool(dfa.accepting[trace[pos]]) == want


class TestRegex2:
    def test_alphabet(self):
        assert regex2_alphabet().size == 3

    def test_shape(self):
        dfa, _ = build_regex2()
        assert dfa.num_inputs == 3
        assert dfa.num_states > 1

    def test_match_ends_detected(self):
        import re

        dfa, _ = build_regex2()
        ab = regex2_alphabet()
        pat = re.compile(r"(.+,.+\.){4}|(.+,){4}|(.+\.){4}")
        rng = np.random.default_rng(2)
        for _ in range(10):
            text = "".join(rng.choice([",", ".", "x"], size=40, p=[0.25, 0.25, 0.5]))
            ids = ab.encode(list(text))
            trace = run_reference_trace(dfa, ids)
            for pos in range(len(text)):
                mine = bool(dfa.accepting[trace[pos]])
                theirs = any(
                    pat.fullmatch(text[i : pos + 1]) for i in range(pos + 1)
                )
                assert mine == theirs

    def test_patterns_exported(self):
        assert "l" in REGEX1_PATTERN and "{4}" in REGEX2_PATTERN
