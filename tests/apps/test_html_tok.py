"""Tests for the HTML tokenizer FSM vs the independent reference."""

import numpy as np
import pytest

from repro.apps.html_tok import (
    NUM_INPUTS,
    NUM_STATES,
    TOK_CHARREF,
    TOK_COMMENT,
    TOK_DOCTYPE,
    TOK_END_TAG,
    TOK_SELF_CLOSING_TAG,
    TOK_START_TAG,
    build_html_tokenizer,
    reference_tokenize,
)
from repro.fsm.alphabet import Alphabet

AB = Alphabet.ascii(NUM_INPUTS)


def fsm_tokenize(text: str) -> list[tuple[int, int]]:
    """Token events from the FSM transducer."""
    dfa = build_html_tokenizer()
    ids = AB.encode_text(text)
    state = dfa.start
    out = []
    for i, a in enumerate(ids):
        e = dfa.emit[a, state]
        state = dfa.table[a, state]
        if e >= 0:
            out.append((i, int(e)))
    return out


class TestShape:
    def test_paper_dimensions(self):
        dfa = build_html_tokenizer()
        assert dfa.num_states == NUM_STATES == 38
        assert dfa.num_inputs == NUM_INPUTS == 128

    def test_is_transducer(self):
        assert build_html_tokenizer().is_transducer

    def test_data_accepting(self):
        dfa = build_html_tokenizer()
        assert dfa.accepting[dfa.start]


class TestTokens:
    def test_start_tag(self):
        assert fsm_tokenize("<div>") == [(4, TOK_START_TAG)]

    def test_end_tag(self):
        assert fsm_tokenize("</div>") == [(5, TOK_END_TAG)]

    def test_self_closing(self):
        assert fsm_tokenize("<br/>") == [(4, TOK_SELF_CLOSING_TAG)]

    def test_attributes_all_styles(self):
        text = '<a href="x" id=\'y\' w=z bare>'
        assert fsm_tokenize(text) == [(len(text) - 1, TOK_START_TAG)]

    def test_comment(self):
        text = "<!-- hi -->"
        assert fsm_tokenize(text) == [(len(text) - 1, TOK_COMMENT)]

    def test_comment_with_dashes(self):
        text = "<!-- a - b -- c --->"
        assert fsm_tokenize(text) == [(len(text) - 1, TOK_COMMENT)]

    def test_bogus_comment(self):
        text = "<!bogus>"
        assert fsm_tokenize(text) == [(len(text) - 1, TOK_COMMENT)]

    def test_doctype(self):
        text = "<!DOCTYPE html>"
        assert fsm_tokenize(text) == [(len(text) - 1, TOK_DOCTYPE)]

    def test_doctype_with_ids(self):
        text = '<!doctype html "a>b" \'c>\'>'
        assert fsm_tokenize(text) == [(len(text) - 1, TOK_DOCTYPE)]

    def test_charref_named(self):
        assert fsm_tokenize("x&amp;y") == [(5, TOK_CHARREF)]

    def test_charref_decimal(self):
        assert fsm_tokenize("&#169;") == [(5, TOK_CHARREF)]

    def test_charref_hex(self):
        assert fsm_tokenize("&#x2014;") == [(7, TOK_CHARREF)]

    def test_abandoned_charref(self):
        assert fsm_tokenize("a&b c") == []

    def test_lt_as_text(self):
        assert fsm_tokenize("1<2 ") == []

    def test_quoted_gt_does_not_end_tag(self):
        text = '<a t=">">'
        assert fsm_tokenize(text) == [(len(text) - 1, TOK_START_TAG)]

    def test_nested_sequence(self):
        text = "<ul><li>x</li></ul>"
        types = [t for _, t in fsm_tokenize(text)]
        assert types == [TOK_START_TAG, TOK_START_TAG, TOK_END_TAG, TOK_END_TAG]

    def test_non_ascii_rejected_by_reference(self):
        with pytest.raises(ValueError):
            reference_tokenize("café")


class TestAgainstReference:
    CASES = [
        "",
        "plain text only",
        "<p>hello</p>",
        "<img src=x />",
        '<a href="q>u" a=\'<\' >link</a>',
        "<!-- -- - --> after",
        "<!doctypehtml>",  # no space: bogus
        "<!DOCT>",
        "</ div>",  # bogus comment path
        "</>",
        "<<div>>",
        "a && b &amp; c &#12 &#x1f;",
        "<a/b=c><a / b>",
        "<e x=1 y z='2'/>",
        "text <b>bold</b> <!-- note --> &gt; done",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_fsm_matches_reference(self, text):
        assert fsm_tokenize(text) == reference_tokenize(text)

    def test_random_pages_match(self):
        from repro.workloads.html import synthetic_page

        for seed in range(5):
            page = synthetic_page(2000, rng=seed)
            assert fsm_tokenize(page) == reference_tokenize(page)

    def test_random_ascii_soup_matches(self):
        rng = np.random.default_rng(0)
        chars = list("<>!-&;#xX/='\"abc 123\n")
        for _ in range(20):
            text = "".join(rng.choice(chars, size=200))
            assert fsm_tokenize(text) == reference_tokenize(text)
