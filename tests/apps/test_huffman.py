"""Tests for Huffman coding and the decoder FSM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.huffman import HuffmanCode
from repro.fsm.run import run_reference


class TestTreeConstruction:
    def test_two_symbols(self):
        code = HuffmanCode.from_frequencies(np.array([5, 3]))
        book = code.codebook()
        assert sorted(book.values()) == ["0", "1"]

    def test_skewed_gets_short_code(self):
        code = HuffmanCode.from_frequencies(np.array([100, 1, 1, 1]))
        lengths = code.code_lengths
        assert lengths[0] == 1  # most frequent symbol gets the shortest code

    def test_single_symbol_degenerate(self):
        code = HuffmanCode.from_frequencies(np.array([0, 7, 0]))
        assert code.codebook() == {1: "0"}

    def test_zero_frequency_symbols_uncoded(self):
        code = HuffmanCode.from_frequencies(np.array([4, 0, 4]))
        assert code.code_lengths[1] == 0

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError, match="positive frequency"):
            HuffmanCode.from_frequencies(np.array([0, 0]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCode.from_frequencies(np.array([1, -1]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCode.from_frequencies(np.ones((2, 2), dtype=np.int64))

    def test_deterministic(self):
        f = np.array([3, 1, 4, 1, 5])
        a = HuffmanCode.from_frequencies(f).codebook()
        b = HuffmanCode.from_frequencies(f).codebook()
        assert a == b

    def test_from_data(self):
        data = np.array([0, 0, 1, 2, 2, 2])
        code = HuffmanCode.from_data(data)
        assert code.num_symbols == 3
        assert code.code_lengths[2] <= code.code_lengths[1]

    def test_prefix_free(self):
        code = HuffmanCode.from_frequencies(np.array([9, 5, 3, 2, 1, 1]))
        words = list(code.codebook().values())
        for i, w in enumerate(words):
            for j, v in enumerate(words):
                if i != j:
                    assert not v.startswith(w)

    def test_kraft_equality(self):
        code = HuffmanCode.from_frequencies(np.array([7, 5, 3, 2, 2, 1]))
        lengths = code.code_lengths[code.code_lengths > 0]
        assert sum(2.0 ** -l for l in lengths) == pytest.approx(1.0)


class TestEncodeDecode:
    def test_roundtrip_small(self):
        code = HuffmanCode.from_frequencies(np.array([4, 3, 2, 1]))
        data = np.array([0, 1, 2, 3, 0, 0, 2])
        bits = code.encode(data)
        np.testing.assert_array_equal(code.decode_reference(bits), data)

    def test_encoded_length_matches(self):
        code = HuffmanCode.from_frequencies(np.array([4, 3, 2, 1]))
        data = np.array([0, 1, 2, 3])
        assert code.encode(data).size == code.encoded_length(data)

    def test_empty(self):
        code = HuffmanCode.from_frequencies(np.array([1, 1]))
        assert code.encode(np.zeros(0, dtype=int)).size == 0
        assert code.decode_reference(np.zeros(0, dtype=np.uint8)).size == 0

    def test_encode_uncoded_symbol_rejected(self):
        code = HuffmanCode.from_frequencies(np.array([1, 0, 1]))
        with pytest.raises(ValueError, match="zero frequency"):
            code.encode(np.array([1]))

    def test_decode_truncated_rejected(self):
        code = HuffmanCode.from_frequencies(np.array([4, 3, 2, 1]))
        bits = code.encode(np.array([3]))
        with pytest.raises(ValueError, match="mid-codeword"):
            code.decode_reference(bits[:-1])

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(st.integers(0, 5), min_size=1, max_size=200),
        freqs=st.lists(st.integers(1, 50), min_size=6, max_size=6),
    )
    def test_roundtrip_property(self, data, freqs):
        code = HuffmanCode.from_frequencies(np.array(freqs))
        arr = np.array(data)
        np.testing.assert_array_equal(code.decode_reference(code.encode(arr)), arr)


class TestDecoderFSM:
    def test_state_count_is_symbols_minus_one(self):
        code = HuffmanCode.from_frequencies(np.array([5, 4, 3, 2, 1]))
        assert code.decoder_dfa().num_states == 4

    def test_binary_alphabet(self):
        code = HuffmanCode.from_frequencies(np.array([2, 1, 1]))
        dfa = code.decoder_dfa()
        assert dfa.num_inputs == 2
        assert dfa.is_transducer

    def test_root_accepting(self):
        dfa = HuffmanCode.from_frequencies(np.array([2, 1, 1])).decoder_dfa()
        assert dfa.accepting[dfa.start]

    def test_whole_codewords_end_at_root(self):
        code = HuffmanCode.from_frequencies(np.array([5, 4, 3, 2]))
        dfa = code.decoder_dfa()
        bits = code.encode(np.array([2, 0, 1, 3, 3]))
        assert run_reference(dfa, bits) == dfa.start

    def test_partial_codeword_not_at_root(self):
        code = HuffmanCode.from_frequencies(np.array([5, 4, 3, 2]))
        dfa = code.decoder_dfa()
        bits = code.encode(np.array([3]))  # longest code
        assert run_reference(dfa, bits[:-1]) != dfa.start

    def test_fsm_emissions_equal_reference_decode(self):
        code = HuffmanCode.from_frequencies(np.array([9, 5, 3, 2, 1]))
        rng = np.random.default_rng(3)
        data = rng.integers(0, 5, size=500)
        bits = code.encode(data)
        dfa = code.decoder_dfa()
        # walk the FSM collecting emissions
        state = dfa.start
        out = []
        for b in bits:
            e = dfa.emit[b, state]
            state = dfa.table[b, state]
            if e >= 0:
                out.append(int(e))
        np.testing.assert_array_equal(out, data)

    @settings(max_examples=20, deadline=None)
    @given(
        data=st.lists(st.integers(0, 7), min_size=1, max_size=100),
        seed=st.integers(0, 100),
    )
    def test_fsm_decode_property(self, data, seed):
        freqs = np.random.default_rng(seed).integers(1, 40, size=8)
        code = HuffmanCode.from_frequencies(freqs)
        arr = np.array(data)
        bits = code.encode(arr)
        dfa = code.decoder_dfa()
        state = dfa.start
        out = []
        for b in bits:
            e = dfa.emit[b, state]
            state = dfa.table[b, state]
            if e >= 0:
                out.append(int(e))
        np.testing.assert_array_equal(out, arr)
