"""Tests for the application registry."""

import numpy as np
import pytest

from repro.apps.registry import APPLICATIONS, get_application


class TestRegistry:
    def test_all_paper_apps_present(self):
        assert set(APPLICATIONS) == {"huffman", "regex1", "regex2", "html", "div7"}

    def test_get_application(self):
        assert get_application("div7").name == "div7"

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="available"):
            get_application("nope")

    def test_paper_cpu_ns(self):
        app = get_application("huffman")
        assert app.paper_cpu_ns_per_item == pytest.approx(2.224, abs=0.01)

    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    def test_build_instance(self, name):
        app = get_application(name)
        dfa, inputs = app.build_instance(20_000, seed=0)
        assert inputs.shape == (20_000,)
        assert inputs.dtype == np.int32
        assert inputs.min() >= 0
        assert int(inputs.max()) < dfa.num_inputs

    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    def test_build_deterministic(self, name):
        app = get_application(name)
        d1, i1 = app.build_instance(5_000, seed=3)
        d2, i2 = app.build_instance(5_000, seed=3)
        np.testing.assert_array_equal(i1, i2)
        np.testing.assert_array_equal(d1.table, d2.table)

    def test_huffman_machine_size_in_paper_range(self):
        dfa, _ = get_application("huffman").build_instance(50_000, seed=1)
        assert 150 <= dfa.num_states <= 230

    def test_html_machine_exact(self):
        dfa, _ = get_application("html").build_instance(10_000, seed=1)
        assert dfa.num_states == 38 and dfa.num_inputs == 128

    def test_div7_machine_exact(self):
        dfa, _ = get_application("div7").build_instance(10_000, seed=1)
        assert dfa.num_states == 7

    def test_best_k_settings(self):
        assert get_application("div7").best_k is None  # spec-N
        assert get_application("regex2").best_k == 1
