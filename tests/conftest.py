"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fsm.dfa import DFA


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; tests derive all randomness from it."""
    return np.random.default_rng(12345)


def make_random_dfa(
    num_states: int, num_inputs: int, seed: int, accepting_fraction: float = 0.3
) -> DFA:
    """Uniform random complete DFA (deterministic in ``seed``)."""
    return DFA.random(
        num_states, num_inputs, rng=seed, accepting_fraction=accepting_fraction
    )


def random_input(
    num_inputs: int, length: int, seed: int
) -> np.ndarray:
    """Random symbol-id stream for a machine with ``num_inputs`` symbols."""
    return (
        np.random.default_rng(seed)
        .integers(0, num_inputs, size=length)
        .astype(np.int32)
    )
