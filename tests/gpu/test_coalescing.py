"""Transaction counting validates the memory model's coalescing factor."""

import pytest

from repro.gpu import calibration as cal
from repro.gpu.coalescing import count_input_transactions
from repro.workloads.chunking import plan_chunks


class TestTransactionCounts:
    def test_large_chunks_full_divergence(self):
        # chunks far apart: every lane of a warp touches its own segment
        plan = plan_chunks(1_000_000, 1024)  # ~977-item chunks
        tc = count_input_transactions(plan)
        assert tc.coalescing_factor == pytest.approx(32, rel=0.05)

    def test_transformed_is_fully_coalesced(self):
        # 32 steps (within the sample window): each of the 32 warps reads
        # 32 consecutive bytes per step -> exactly one transaction per warp
        plan = plan_chunks(32 * 1024, 1024)
        tc = count_input_transactions(plan, max_steps=None)
        assert tc.transformed == 32 * (1024 // 32)

    def test_tiny_chunks_partially_coalesce_naturally(self):
        # chunks of ~4 items: a warp's lanes span only ~128 bytes, so even
        # the natural layout coalesces into one segment per warp
        plan = plan_chunks(4096, 1024)
        tc = count_input_transactions(plan)
        assert tc.coalescing_factor < 4

    def test_item_width_matters(self):
        plan = plan_chunks(200_000, 512)
        narrow = count_input_transactions(plan, item_bytes=1)
        wide = count_input_transactions(plan, item_bytes=8)
        # 8-byte items make a warp span two 128B segments per step
        assert wide.transformed == pytest.approx(2 * narrow.transformed, rel=0.01)
        # ...while 4-byte items still fit one segment per warp exactly
        four = count_input_transactions(plan, item_bytes=4)
        assert four.transformed == narrow.transformed

    def test_full_count_matches_sampled(self):
        plan = plan_chunks(8192, 256)  # 32 steps: sample == full
        a = count_input_transactions(plan, max_steps=None)
        b = count_input_transactions(plan, max_steps=64)
        assert (a.natural, a.transformed) == (b.natural, b.transformed)

    def test_validation(self):
        with pytest.raises(ValueError):
            count_input_transactions(plan_chunks(100, 4), item_bytes=0)

    def test_model_constant_within_counted_range(self):
        # the calibrated uncoalesced/coalesced ratio must not exceed the
        # hardware's worst case (32 lanes -> 32 segments)
        ratio = cal.GMEM_UNCOALESCED_NS / cal.GMEM_COALESCED_NS
        plan = plan_chunks(2_000_000, 2048)
        counted = count_input_transactions(plan).coalescing_factor
        # the model charges extra latency beyond pure transaction count
        # (each divergent access also serializes); bound it loosely
        assert counted <= 32.0 + 1e-9
        assert ratio <= 32 * counted
