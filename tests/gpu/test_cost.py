"""Tests for the cost model: pricing invariants and paper-shape properties."""

import numpy as np
import pytest

import repro
from repro.core.types import ExecStats
from repro.gpu.cost import CostModel, TimeBreakdown
from repro.gpu.device import TESLA_V100
from tests.conftest import make_random_dfa, random_input


def stats_for(merge: str, num_blocks: int, dfa=None, inp=None, **kwargs) -> ExecStats:
    dfa = dfa if dfa is not None else make_random_dfa(6, 2, seed=0)
    inp = inp if inp is not None else random_input(2, 200_000, seed=1)
    r = repro.run_speculative(
        dfa, inp, num_blocks=num_blocks, threads_per_block=256, merge=merge,
        price=False, **kwargs,
    )
    return r.stats


class TestTimeBreakdown:
    def test_total_is_sum(self):
        tb = TimeBreakdown(1.0, 2.0, 3.0, 4.0, cpu_s=100.0)
        assert tb.total_s == 10.0
        assert tb.speedup == 10.0

    def test_zero_total(self):
        tb = TimeBreakdown(0.0, 0.0, 0.0, 0.0, cpu_s=1.0)
        assert tb.speedup == float("inf")

    def test_as_row_keys(self):
        tb = TimeBreakdown(1e-3, 1e-3, 0.0, 0.0, cpu_s=1.0)
        row = tb.as_row()
        assert set(row) == {
            "local_ms", "merge_ms", "reexec_ms", "fixup_ms", "total_ms", "speedup"
        }


class TestPricingInvariants:
    def test_invalid_merge(self):
        with pytest.raises(ValueError):
            CostModel().price(
                ExecStats(num_items=1, k=1), num_blocks=1, threads_per_block=32,
                merge="tree", layout_transformed=True,
            )

    def test_components_nonnegative(self):
        s = stats_for("parallel", 20, k=4)
        tb = CostModel().price(s, num_blocks=20, threads_per_block=256,
                               merge="parallel", layout_transformed=True)
        assert min(tb.local_s, tb.merge_s, tb.reexec_s, tb.fixup_s) >= 0

    def test_natural_layout_slower(self):
        s = stats_for("parallel", 20, k=4)
        fast = CostModel().price(s, num_blocks=20, threads_per_block=256,
                                 merge="parallel", layout_transformed=True)
        slow = CostModel().price(s, num_blocks=20, threads_per_block=256,
                                 merge="parallel", layout_transformed=False)
        assert slow.local_s > fast.local_s

    def test_oversubscription_waves(self):
        s = stats_for("parallel", 80, k=4)
        normal = CostModel().price(s, num_blocks=80, threads_per_block=256,
                                   merge="parallel", layout_transformed=True)
        over = CostModel().price(s, num_blocks=160, threads_per_block=256,
                                 merge="parallel", layout_transformed=True)
        assert over.local_s == pytest.approx(2 * normal.local_s)

    def test_bandwidth_floor_engages(self):
        # absurdly many items, trivial per-step cost: floor must bind
        s = ExecStats(num_items=10**12, num_chunks=80 * 256, k=1,
                      num_states=2, num_inputs=2, local_steps=1)
        tb = CostModel().price(s, num_blocks=80, threads_per_block=256,
                               merge="parallel", layout_transformed=True)
        floor = 10**12 / (TESLA_V100.mem_bandwidth_gbs * 1e9)
        assert tb.local_s == pytest.approx(floor)

    def test_cpu_baseline_scales(self):
        s = stats_for("parallel", 20, k=2)
        a = CostModel(cpu_transition_ns=1.0).price(
            s, num_blocks=20, threads_per_block=256, merge="parallel",
            layout_transformed=True)
        b = CostModel(cpu_transition_ns=3.0).price(
            s, num_blocks=20, threads_per_block=256, merge="parallel",
            layout_transformed=True)
        assert b.cpu_s == pytest.approx(3 * a.cpu_s)


class TestPaperShapes:
    """The qualitative claims of Figures 3 and 7-11, as assertions."""

    @pytest.fixture(scope="class")
    def div7_case(self):
        from repro.apps.div import div7_dfa
        from repro.workloads.binary import random_bits

        return div7_dfa(), random_bits(200_000, rng=0)

    def measure(self, dfa, inp, merge, blocks):
        r = repro.run_speculative(dfa, inp, k=None, num_blocks=blocks,
                                  threads_per_block=256, merge=merge, price=False)
        proj = r.stats.project(2**30)
        return CostModel(cpu_transition_ns=2.23).price(
            proj, num_blocks=blocks, threads_per_block=256, merge=merge,
            layout_transformed=True,
        ).speedup

    def test_parallel_merge_scales_monotonically(self, div7_case):
        dfa, inp = div7_case
        speeds = [self.measure(dfa, inp, "parallel", b) for b in (20, 40, 80)]
        assert speeds[0] < speeds[1] < speeds[2]

    def test_sequential_merge_stops_scaling(self, div7_case):
        dfa, inp = div7_case
        speeds = [self.measure(dfa, inp, "sequential", b) for b in (20, 40, 80)]
        assert max(speeds[:2]) > speeds[2]  # declines by 80 blocks

    def test_parallel_beats_sequential_at_scale(self, div7_case):
        dfa, inp = div7_case
        par = self.measure(dfa, inp, "parallel", 80)
        seq = self.measure(dfa, inp, "sequential", 80)
        assert par / seq > 2.0  # paper: 2.02 - 6.74x

    def test_div7_absolute_magnitude(self, div7_case):
        # paper: 397.93x at 80 blocks; hold the model to within 2x
        dfa, inp = div7_case
        par = self.measure(dfa, inp, "parallel", 80)
        assert 200 < par < 800

    def test_spec_n_spill_penalty(self):
        # A large-state machine under spec-N spills the state array, so its
        # local processing must cost far more than k's linear share alone
        # (paper: 205-state Huffman reaches only ~15x under spec-N).
        dfa = make_random_dfa(200, 2, seed=3)
        inp = random_input(2, 200_000, seed=4)

        def local_time(k):
            r = repro.run_speculative(dfa, inp, k=k, num_blocks=80,
                                      threads_per_block=256, price=False,
                                      measure_success=False)
            proj = r.stats.project(2**30)
            return CostModel().price(
                proj, num_blocks=80, threads_per_block=256, merge="parallel",
                layout_transformed=True).local_s

        assert local_time(None) / local_time(8) > 10
