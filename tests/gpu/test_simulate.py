"""Tests for the lane-level merge simulator vs the vectorized tree merge."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.local import process_chunks
from repro.core.lookback import speculate
from repro.core.merge_par import merge_parallel
from repro.core.types import ChunkResults
from repro.gpu.simulate import simulate_hierarchical_merge
from repro.workloads.chunking import plan_chunks
from tests.conftest import make_random_dfa, random_input


def build_results(seed: int, n_items: int, chunks: int, k: int):
    dfa = make_random_dfa(8, 2, seed=seed)
    inp = random_input(2, n_items, seed=seed + 1)
    plan = plan_chunks(n_items, chunks)
    spec = speculate(dfa, inp, plan, k, lookback=3)
    end, _ = process_chunks(dfa, inp, plan, spec)
    results = ChunkResults(spec=spec, end=end, valid=np.ones_like(spec, dtype=bool))
    return dfa, inp, plan, results


class TestEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 300), k=st.integers(1, 4),
           blocks=st.integers(1, 3))
    def test_matches_tree_merge_root(self, seed, k, blocks):
        # Same composition algebra: the simulated final map must equal the
        # vectorized tree merge's root (delayed strategy, before fix-up).
        chunks = blocks * 64
        dfa, inp, plan, results = build_results(seed, 2000, chunks, k)
        sim = simulate_hierarchical_merge(results, threads_per_block=64)
        _, tree = merge_parallel(
            dfa, inp, plan, results, reexec="delayed",
            threads_per_block=64, stats=None,
        )
        root = tree.root
        np.testing.assert_array_equal(sim.final_spec, root.spec[0])
        np.testing.assert_array_equal(sim.final_valid, root.valid[0])
        # ends only meaningful where valid
        np.testing.assert_array_equal(
            sim.final_end[sim.final_valid], root.end[0][root.valid[0]]
        )

    def test_lookup_final_state(self):
        dfa, inp, plan, results = build_results(7, 4096, 128, 2)
        sim = simulate_hierarchical_merge(results, threads_per_block=64)
        looked = sim.lookup(dfa.start)
        if looked is not None:
            from repro.fsm.run import run_reference

            assert looked == run_reference(dfa, inp)


class TestCounters:
    def test_shuffle_counts(self):
        # one block of 64 threads, k=2: two warps of 5 rounds each plus one
        # block-stage round over 2 warp results
        _, _, _, results = build_results(1, 1000, 64, 2)
        sim = simulate_hierarchical_merge(results, threads_per_block=64)
        c = sim.counters
        # warp stage: per warp, 31 pair combinations x 2k shuffled values
        assert c.shuffle_ops == (31 * 2 + 1) * 2 * 2
        assert c.barriers == 2
        assert c.global_loads == 0  # single block: no grid stage reads

    def test_grid_stage_reads(self):
        _, _, _, results = build_results(2, 4000, 4 * 32, 2)
        sim = simulate_hierarchical_merge(results, threads_per_block=32)
        assert sim.counters.global_loads == 3 * 2 * 2  # 3 folds x 2k values
        assert sim.counters.global_stores == 4 * 2 * 2

    def test_divergence_grows_with_rounds(self):
        _, _, _, results = build_results(3, 2000, 64, 1)
        sim = simulate_hierarchical_merge(results, threads_per_block=64)
        # later shuffle rounds have fewer active lanes
        actives = [a for a, _ in sim.counters.active_lane_rounds]
        assert actives[0] > actives[4 - 1]
        assert 0 <= sim.counters.divergence_ratio <= 1

    def test_validation_errors(self):
        _, _, _, results = build_results(4, 1000, 64, 2)
        with pytest.raises(ValueError, match="multiple"):
            simulate_hierarchical_merge(results, threads_per_block=48)
        with pytest.raises(ValueError, match="num_chunks"):
            simulate_hierarchical_merge(results, threads_per_block=128)
