"""Tests for price_at_scale and the runner's measurement helpers."""

import numpy as np
import pytest

import repro
from repro.bench.runner import BenchConfig, app_instance, bench_items, measure
from repro.gpu.cost import price_at_scale
from repro.gpu.device import GTX_1080TI
from tests.conftest import make_random_dfa, random_input


class TestPriceAtScale:
    @pytest.fixture()
    def result(self):
        dfa = make_random_dfa(6, 2, seed=0)
        inp = random_input(2, 50_000, seed=1)
        return repro.run_speculative(dfa, inp, k=2, num_blocks=2,
                                     threads_per_block=64, price=False)

    def test_scales_local_time(self, result):
        small = price_at_scale(result, 50_000)
        big = price_at_scale(result, 500_000)
        assert big.local_s == pytest.approx(10 * small.local_s, rel=0.01)

    def test_merge_time_unchanged(self, result):
        small = price_at_scale(result, 50_000)
        big = price_at_scale(result, 500_000)
        assert big.merge_s == pytest.approx(small.merge_s)

    def test_speedup_grows_with_scale(self, result):
        # merge is amortized over more items: speedup improves
        assert price_at_scale(result, 5_000_000).speedup > price_at_scale(
            result, 50_000
        ).speedup

    def test_uses_result_configuration(self, result):
        tb = price_at_scale(result, 100_000)
        assert tb.total_s > 0

    def test_cpu_override(self, result):
        a = price_at_scale(result, 100_000, cpu_transition_ns=1.0)
        b = price_at_scale(result, 100_000, cpu_transition_ns=2.0)
        assert b.cpu_s == pytest.approx(2 * a.cpu_s)

    def test_device_override(self, result):
        tb = price_at_scale(result, 100_000, device=GTX_1080TI)
        assert tb.total_s > 0


class TestRunnerHelpers:
    def test_bench_items_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ITEMS", "1234")
        assert bench_items() == 1234

    def test_app_instance_cached(self):
        a = app_instance("div7", 10_000, 0)
        b = app_instance("div7", 10_000, 0)
        assert a[1] is b[1]  # same array object: lru_cache hit

    def test_app_instance_distinct_keys(self):
        a = app_instance("div7", 10_000, 0)
        b = app_instance("div7", 10_000, 1)
        assert a[1] is not b[1]

    def test_measure_projection_flag(self):
        cfg = BenchConfig(app="div7", k=None, num_blocks=20)
        proj = measure(cfg, num_items=50_000, project_to_paper_scale=True)
        raw = measure(cfg, num_items=50_000, project_to_paper_scale=False)
        # paper scale amortizes the merge far better
        assert proj.speedup > raw.speedup
