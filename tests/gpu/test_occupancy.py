"""Tests for the occupancy and register-spill model."""

import pytest

from repro.gpu import calibration as cal
from repro.gpu.device import TESLA_V100
from repro.gpu.occupancy import occupancy_report, spill_factor


class TestSpill:
    def test_no_spill_small_k(self):
        assert spill_factor(1) == 1.0
        assert spill_factor(cal.SPILL_THRESHOLD_STATES) == 1.0

    def test_spill_past_threshold(self):
        assert spill_factor(cal.SPILL_THRESHOLD_STATES + 1) == cal.SPILL_FACTOR

    def test_spec_n_huffman_spills(self):
        # the paper's 205-state machine under spec-N must spill
        assert spill_factor(205) > 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            spill_factor(0)


class TestOccupancy:
    def test_more_k_fewer_blocks(self):
        low = occupancy_report(TESLA_V100, 256, k=1)
        high = occupancy_report(TESLA_V100, 256, k=24)
        assert high.registers_per_thread > low.registers_per_thread
        assert high.max_blocks_registers <= low.max_blocks_registers

    def test_register_cap(self):
        r = occupancy_report(TESLA_V100, 256, k=500)
        assert r.registers_per_thread <= TESLA_V100.registers_per_thread_max

    def test_shared_memory_limits_blocks(self):
        r = occupancy_report(TESLA_V100, 256, k=4,
                             shared_bytes_per_block=48 * 1024)
        assert r.max_blocks_shared == 2

    def test_oversized_shared_rejected(self):
        with pytest.raises(ValueError, match="shared memory"):
            occupancy_report(TESLA_V100, 256, k=4,
                             shared_bytes_per_block=97 * 1024)

    def test_thread_limit(self):
        r = occupancy_report(TESLA_V100, 1024, k=4)
        assert r.max_blocks_threads == 2

    def test_resident_warps(self):
        r = occupancy_report(TESLA_V100, 256, k=4)
        assert r.resident_warps_per_sm == r.resident_blocks_per_sm * 8

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            occupancy_report(TESLA_V100, 256, k=0)
