"""Tests for the memory model."""

import pytest

from repro.gpu import calibration as cal
from repro.gpu.device import TESLA_V100
from repro.gpu.memory import MemoryModel


@pytest.fixture
def mem():
    return MemoryModel(TESLA_V100)


class TestInputReads:
    def test_coalesced_cheaper(self, mem):
        assert mem.input_read_ns(True) < mem.input_read_ns(False)

    def test_coalescing_factor_substantial(self, mem):
        # the layout transformation must be worth several x (Fig. 14)
        assert mem.input_read_ns(False) / mem.input_read_ns(True) > 10


class TestTableSteps:
    def test_small_table_served_by_l2(self, mem):
        assert mem.table_step_ns(1024) == cal.TABLE_STEP_L2_NS

    def test_huge_table_dram(self, mem):
        assert mem.table_step_ns(TESLA_V100.l2_bytes + 1) == cal.TABLE_STEP_DRAM_NS

    def test_cache_hit_cheaper_than_uncached(self, mem):
        cached = mem.table_step_ns(4096, cache_enabled=True, cache_hit_rate=1.0)
        uncached = mem.table_step_ns(4096)
        assert cached < uncached

    def test_cache_all_miss_worse_than_uncached(self, mem):
        # pure misses still pay the hash check: strictly worse than no cache
        missy = mem.table_step_ns(4096, cache_enabled=True, cache_hit_rate=0.0)
        assert missy > mem.table_step_ns(4096)

    def test_hit_rate_interpolates(self, mem):
        lo = mem.table_step_ns(4096, cache_enabled=True, cache_hit_rate=0.0)
        hi = mem.table_step_ns(4096, cache_enabled=True, cache_hit_rate=1.0)
        mid = mem.table_step_ns(4096, cache_enabled=True, cache_hit_rate=0.5)
        assert hi < mid < lo

    def test_hit_rate_clamped(self, mem):
        a = mem.table_step_ns(4096, cache_enabled=True, cache_hit_rate=2.0)
        b = mem.table_step_ns(4096, cache_enabled=True, cache_hit_rate=1.0)
        assert a == b


class TestMergeTraffic:
    def test_hierarchy_ordering(self, mem):
        # shuffle < shared exchange < dependent global
        assert mem.shuffle_ns() < mem.shared_exchange_ns() < mem.dependent_global_ns()

    def test_bandwidth_floor(self, mem):
        one_gb = mem.bandwidth_floor_s(10**9)
        assert one_gb == pytest.approx(1.0 / TESLA_V100.mem_bandwidth_gbs)
