"""Tests for the Chrome trace exporter."""

import json

import pytest

import repro
from repro.gpu.trace import trace_events, write_trace
from tests.conftest import make_random_dfa, random_input


@pytest.fixture()
def result():
    dfa = make_random_dfa(6, 2, seed=0)
    inp = random_input(2, 30_000, seed=1)
    return repro.run_speculative(dfa, inp, k=2, num_blocks=2,
                                 threads_per_block=64)


class TestTraceEvents:
    def test_spans_present(self, result):
        events = trace_events(result)
        names = {e["name"] for e in events}
        assert any("local spec-2" in n for n in names)
        assert any("parallel merge" in n for n in names)
        assert "single-core CPU baseline" in names

    def test_durations_match_breakdown(self, result):
        events = trace_events(result)
        local = next(e for e in events if e["name"].startswith("local"))
        assert local["dur"] == pytest.approx(result.timing.local_s * 1e6)

    def test_stages_sequential(self, result):
        events = [e for e in events_of_kind(trace_events(result), "X")
                  if e["pid"] == 0 and e["tid"] == 0]
        ends = None
        for e in sorted(events, key=lambda e: e["ts"]):
            if ends is not None:
                assert e["ts"] >= ends - 1e-9
            ends = e["ts"] + e["dur"]

    def test_requires_timing(self):
        dfa = make_random_dfa(4, 2, seed=2)
        r = repro.run_speculative(dfa, random_input(2, 100, seed=3),
                                  num_blocks=1, threads_per_block=32,
                                  price=False)
        with pytest.raises(ValueError, match="timing"):
            trace_events(r)

    def test_lane_count(self, result):
        events = trace_events(result, sm_lanes=3)
        locals_ = [e for e in events if e["name"].startswith("local")]
        assert len(locals_) == 3


class TestWriteTrace:
    def test_valid_json(self, result, tmp_path):
        path = write_trace(result, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert "traceEvents" in data
        assert len(data["traceEvents"]) > 3

    def test_at_scale(self, result, tmp_path):
        small = json.loads(write_trace(result, tmp_path / "a.json").read_text())
        big = json.loads(
            write_trace(result, tmp_path / "b.json", at_scale=3_000_000).read_text()
        )

        def local_dur(d):
            return next(
                e for e in d["traceEvents"] if e["name"].startswith("local")
            )["dur"]

        assert local_dur(big) == pytest.approx(100 * local_dur(small), rel=0.01)


def events_of_kind(events, ph):
    return [e for e in events if e.get("ph") == ph]
