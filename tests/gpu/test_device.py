"""Tests for device specs and launch geometry."""

import pytest

from repro.gpu.device import GTX_1080TI, TESLA_V100, launch_geometry


class TestDeviceSpec:
    def test_v100_table2_values(self):
        d = TESLA_V100
        assert d.num_sms == 80
        assert d.cuda_cores == 5120
        assert d.max_threads_per_block == 1024
        assert d.shared_mem_per_sm_bytes == 96 * 1024
        assert d.registers_per_thread_max == 255
        assert d.mem_bus_bits == 4096

    def test_max_resident_blocks(self):
        assert TESLA_V100.max_resident_blocks == 80
        assert GTX_1080TI.max_resident_blocks == 28

    def test_validate_block(self):
        TESLA_V100.validate_block(256)
        with pytest.raises(ValueError):
            TESLA_V100.validate_block(0)
        with pytest.raises(ValueError):
            TESLA_V100.validate_block(2048)
        with pytest.raises(ValueError, match="warp"):
            TESLA_V100.validate_block(100)


class TestLaunchGeometry:
    def test_basic(self):
        geo = launch_geometry(TESLA_V100, 40, 256)
        assert geo.total_threads == 40 * 256
        assert geo.warps_per_block == 8
        assert geo.resident_blocks == 40
        assert not geo.oversubscribed

    def test_oversubscription(self):
        geo = launch_geometry(TESLA_V100, 200, 256)
        assert geo.resident_blocks == 80
        assert geo.oversubscribed

    def test_invalid_blocks(self):
        with pytest.raises(ValueError):
            launch_geometry(TESLA_V100, 0, 256)
