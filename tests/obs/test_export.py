"""Tests for RunTrace exporters: JSON round-trip, Chrome trace, profile text."""

import json
import time

from repro.obs.export import (
    chrome_trace_events,
    format_profile,
    load_run_trace,
    write_chrome_trace,
    write_run_trace,
)
from repro.obs.trace import RunTrace


def make_trace() -> RunTrace:
    t = RunTrace("unit", app="div7", items=100)
    with t.span("engine.speculate"):
        time.sleep(0.001)
    with t.span("engine.merge", strategy="parallel"):
        with t.span("merge.level", level=0):
            time.sleep(0.001)
        with t.span("merge.level", level=1):
            pass
    t.count("merge.semijoin.match", 42)
    t.count("merge.semijoin.miss", 3)
    t.observe("merge.level_s", 0.001)
    t.observe("merge.level_s", 0.003)
    return t


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        t = make_trace()
        path = write_run_trace(t, tmp_path / "run.json")
        loaded = load_run_trace(path)
        assert loaded.name == t.name
        assert loaded.meta == t.meta
        assert len(loaded.spans) == len(t.spans)
        for orig, back in zip(t.spans, loaded.spans):
            assert back.name == orig.name
            assert back.parent == orig.parent
            assert back.attrs == orig.attrs
            assert back.duration_s == orig.duration_s
        assert {c.name: c.value for c in loaded.counters.values()} == {
            "merge.semijoin.match": 42, "merge.semijoin.miss": 3,
        }
        h = loaded.histograms["merge.level_s"]
        assert h.count == 2
        assert h.min == 0.001
        assert h.max == 0.003

    def test_double_round_trip_stable(self):
        t = make_trace()
        once = RunTrace.from_json(t.to_json())
        twice = RunTrace.from_json(once.to_json())
        assert once.to_dict() == twice.to_dict()

    def test_numpy_attrs_serializable(self):
        import numpy as np

        t = RunTrace()
        with t.span("s", count=np.int64(5), frac=np.float64(0.5)):
            pass
        data = json.loads(t.to_json())
        assert data["spans"][0]["attrs"] == {"count": 5, "frac": 0.5}

    def test_schema_version_present(self):
        assert json.loads(make_trace().to_json())["schema"] == 1


class TestChromeTrace:
    def test_events_well_formed(self, tmp_path):
        path = write_chrome_trace(make_trace(), tmp_path / "chrome.json")
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 4
        for e in spans:
            assert e["ts"] >= 0
            assert e["dur"] >= 0
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "run metrics" for e in meta)

    def test_nesting_by_containment(self):
        events = chrome_trace_events(make_trace())
        merge = next(e for e in events if e["name"] == "engine.merge")
        levels = [e for e in events if e["name"] == "merge.level"]
        for lv in levels:
            assert lv["ts"] >= merge["ts"] - 1e-9
            assert lv["ts"] + lv["dur"] <= merge["ts"] + merge["dur"] + 1e-9

    def test_tid_attribute_routes_row(self):
        t = RunTrace()
        t.add_span("pool.worker", 0.0, 1.0, tid=3, worker=2)
        (span,) = [e for e in chrome_trace_events(t) if e["ph"] == "X"]
        assert span["tid"] == 3
        assert span["args"] == {"worker": 2}  # tid not duplicated into args

    def test_gpu_modeled_trace_same_emitter(self):
        """The unified path: modeled GPU traces go through the obs emitter."""
        import repro
        from repro.gpu.trace import modeled_run_trace, trace_events
        from tests.conftest import make_random_dfa, random_input

        dfa = make_random_dfa(6, 2, seed=0)
        result = repro.run_speculative(
            dfa, random_input(2, 30_000, seed=1), k=2,
            num_blocks=2, threads_per_block=64,
        )
        mt = modeled_run_trace(result)
        assert isinstance(mt, RunTrace)
        events = trace_events(result)
        local = next(e for e in events if e["name"].startswith("local"))
        assert local["dur"] > 0


class TestFormatProfile:
    def test_stage_table_contents(self):
        t = make_trace()
        text = format_profile(t, wall_s=max(s.t1 for s in t.spans))
        assert "engine.speculate" in text
        assert "merge.level[0]" in text
        assert "merge.level[1]" in text
        assert "stages total" in text
        assert "merge.semijoin.match" in text
        assert "% of measured wall time" in text

    def test_coverage_percentage_reasonable(self):
        t = make_trace()
        wall = max(s.t1 for s in t.spans)
        text = format_profile(t, wall_s=wall)
        line = next(ln for ln in text.splitlines() if "% of measured wall time" in ln)
        pct = float(line.split("cover ")[1].split("%")[0])
        assert 90.0 <= pct <= 101.0

    def test_empty_trace_renders(self):
        text = format_profile(RunTrace("empty"), wall_s=0.0)
        assert "profile: empty" in text
