"""Tests for the span/metrics core of the observability layer."""

import time
import tracemalloc

import pytest

from repro.obs import trace as trace_mod
from repro.obs.trace import (
    Counter,
    Histogram,
    RunTrace,
    add_count,
    current_trace,
    observe,
    trace_span,
)


class TestSpanNesting:
    def test_children_recorded_under_parent(self):
        t = RunTrace("nest")
        with t.span("outer"):
            with t.span("inner_a"):
                pass
            with t.span("inner_b"):
                pass
        outer = t.find("outer")[0]
        assert [s.name for s in t.children(outer)] == ["inner_a", "inner_b"]
        assert t.roots() == [outer]

    def test_deep_nesting_parents_chain(self):
        t = RunTrace()
        with t.span("a"):
            with t.span("b"):
                with t.span("c"):
                    pass
        a, b, c = t.spans
        assert a.parent == -1
        assert b.parent == a.index
        assert c.parent == b.index

    def test_sibling_spans_after_close_are_roots(self):
        t = RunTrace()
        with t.span("first"):
            pass
        with t.span("second"):
            pass
        assert [s.name for s in t.roots()] == ["first", "second"]

    def test_span_times_monotone_and_contained(self):
        t = RunTrace()
        with t.span("outer"):
            time.sleep(0.002)
            with t.span("inner"):
                time.sleep(0.002)
        outer, inner = t.spans
        assert outer.t0 <= inner.t0
        assert inner.t1 <= outer.t1
        assert inner.duration_s > 0
        assert outer.duration_s >= inner.duration_s

    def test_exception_still_closes_span(self):
        t = RunTrace()
        with pytest.raises(RuntimeError):
            with t.span("risky"):
                raise RuntimeError("boom")
        assert t.spans[0].t1 >= t.spans[0].t0

    def test_set_attrs(self):
        t = RunTrace()
        with t.span("s") as sp:
            sp.set(items=7, level=2)
        assert t.spans[0].attrs == {"items": 7, "level": 2}


class TestActivation:
    def test_ambient_trace_installed_and_restored(self):
        assert current_trace() is None
        t = RunTrace()
        with t.activate():
            assert current_trace() is t
            with trace_span("stage"):
                pass
        assert current_trace() is None
        assert t.find("stage")

    def test_nested_activation_restores_outer(self):
        outer, inner = RunTrace("outer"), RunTrace("inner")
        with outer.activate():
            with inner.activate():
                add_count("x")
                assert current_trace() is inner
            assert current_trace() is outer
        assert inner.counters["x"].value == 1
        assert "x" not in outer.counters

    def test_module_helpers_route_to_active(self):
        t = RunTrace()
        with t.activate():
            add_count("events", 3)
            observe("lat_s", 0.5)
        assert t.counters["events"].value == 3
        assert t.histograms["lat_s"].count == 1


class TestDisabledMode:
    def test_disabled_span_is_singleton_no_alloc(self):
        assert current_trace() is None
        first = trace_span("anything")
        # Identity: disabled mode hands back one pre-allocated object.
        assert trace_span("other", attr=1) is first
        def hot_loop():
            for _ in range(1000):
                with trace_span("hot"):
                    pass
                add_count("c")
                observe("h", 1.0)

        hot_loop()  # warm up: one-time setup allocations happen here
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        hot_loop()
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        leaked = sum(
            s.size_diff for s in after.compare_to(before, "lineno")
            if s.size_diff > 0 and "test_trace" in str(s.traceback)
        )
        # No allocations attributable to the hot loop (tracemalloc's own
        # bookkeeping lines elsewhere are excluded by the filter).
        assert leaked == 0

    def test_disabled_overhead_smoke(self):
        # Perf smoke: 100k disabled span entries must be far under the
        # millisecond scale of any engine stage. Very loose bound to stay
        # robust on slow CI machines.
        n = 100_000
        t0 = time.perf_counter()
        for _ in range(n):
            with trace_span("hot"):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < 1.0

    def test_counters_noop_without_trace(self):
        add_count("nowhere", 5)
        observe("nowhere_s", 1.0)
        assert current_trace() is None


class TestMetrics:
    def test_counter_accumulates(self):
        c = Counter("n.items")
        c.add()
        c.add(9)
        assert c.value == 10

    def test_histogram_summary(self):
        h = Histogram("lat_s")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_trace_counter_get_or_create(self):
        t = RunTrace()
        assert t.counter("a") is t.counter("a")
        t.count("a", 2)
        t.count("a")
        assert t.counters["a"].value == 3

    def test_stage_breakdown_sums_repeats(self):
        t = RunTrace()
        for _ in range(2):
            with t.span("stage"):
                time.sleep(0.001)
        breakdown = t.stage_breakdown()
        assert set(breakdown) == {"stage"}
        assert breakdown["stage"] >= 0.002

    def test_total_s_by_name(self):
        t = RunTrace()
        with t.span("x"):
            with t.span("x"):
                pass
        assert t.total_s("x") >= t.spans[1].duration_s


class TestEngineIntegration:
    def test_run_speculative_emits_stage_spans(self):
        import repro
        from tests.conftest import make_random_dfa, random_input

        dfa = make_random_dfa(6, 2, seed=0)
        inp = random_input(2, 20_000, seed=1)
        t = RunTrace("engine")
        result = repro.run_speculative(
            dfa, inp, k=2, num_blocks=1, threads_per_block=64,
            price=False, trace=t,
        )
        names = {s.name for s in t.spans}
        assert {"engine.speculate", "engine.local_exec", "engine.merge"} <= names
        assert any(s.name == "merge.level" for s in t.spans)
        assert result.trace is t
        assert t.counters["merge.semijoin.match"].value > 0

    def test_sequential_merge_counts_semijoin(self):
        import repro
        from tests.conftest import make_random_dfa, random_input

        dfa = make_random_dfa(6, 2, seed=2)
        inp = random_input(2, 20_000, seed=3)
        t = RunTrace()
        with t.activate():
            repro.run_speculative(
                dfa, inp, k=2, num_blocks=1, threads_per_block=64,
                merge="sequential", price=False,
            )
        skipped = t.counters.get("merge.semijoin.skipped")
        total = (
            t.counters["merge.semijoin.match"].value
            + t.counters["merge.semijoin.miss"].value
            + (skipped.value if skipped is not None else 0)
        )
        # One semi-join probe per chunk — converged chunks (lane collapse
        # is on by default) skip theirs and count as skipped instead.
        assert total == 64

    def test_no_trace_attached_when_disabled(self):
        import repro
        from tests.conftest import make_random_dfa, random_input

        dfa = make_random_dfa(4, 2, seed=4)
        r = repro.run_speculative(
            dfa, random_input(2, 500, seed=5), num_blocks=1,
            threads_per_block=32, price=False,
        )
        assert r.trace is None


class TestCounterPrefix:
    def test_counters_with_prefix_selects_namespace(self):
        t = RunTrace("prefix")
        t.count("fault.retries", 2)
        t.count("fault.worker_deaths")
        t.count("pool.shm.attaches", 5)
        fault = t.counters_with_prefix("fault.")
        assert fault == {"fault.retries": 2, "fault.worker_deaths": 1}

    def test_counters_with_prefix_empty_when_none_fired(self):
        t = RunTrace("prefix-empty")
        t.count("pool.calls")
        assert t.counters_with_prefix("fault.") == {}


def test_module_state_clean():
    """The ambient trace must never leak between tests."""
    assert trace_mod._current is None
