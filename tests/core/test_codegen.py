"""Tests for the kernel code generator (Python kernels + CUDA source)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.codegen.cuda_src import generate_cuda_kernel
from repro.core.codegen.pykernel import compile_local_kernel, generate_local_source
from repro.core.codegen.select import plan_kernel
from repro.fsm.run import run_reference
from tests.conftest import make_random_dfa, random_input


class TestSelect:
    def test_nested_for_small_k(self):
        plan = plan_kernel(make_random_dfa(20, 3, seed=0), 8)
        assert plan.check == "nested"
        assert plan.states_in_registers

    def test_hash_past_threshold(self):
        plan = plan_kernel(make_random_dfa(40, 3, seed=0), 13)
        assert plan.check == "hash"

    def test_spec_n(self):
        dfa = make_random_dfa(30, 3, seed=0)
        plan = plan_kernel(dfa, None)
        assert plan.enumerative and plan.k == 30

    def test_spill_for_large_k(self):
        plan = plan_kernel(make_random_dfa(60, 2, seed=0), 50)
        assert not plan.states_in_registers
        assert plan.spill_factor > 1

    def test_cache_planned(self):
        plan = plan_kernel(make_random_dfa(50, 4, seed=1), 4, cache_table=True)
        assert plan.cache_rows > 0
        assert plan.shared_bytes > 0

    def test_describe_mentions_choices(self):
        plan = plan_kernel(make_random_dfa(50, 4, seed=1), 16, cache_table=True)
        text = plan.describe()
        assert "hash" in text and "hot-state cache" in text

    def test_bad_k(self):
        with pytest.raises(ValueError):
            plan_kernel(make_random_dfa(5, 2, seed=0), 0)


class TestPyKernel:
    def test_source_unrolls_k(self):
        src = generate_local_source(3)
        assert "s0 = " in src and "s2 = " in src and "s3" not in src

    def test_source_invalid_k(self):
        with pytest.raises(ValueError):
            generate_local_source(0)

    def test_kernel_memoized(self):
        assert compile_local_kernel(4) is compile_local_kernel(4)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 500),
        k=st.integers(1, 6),
        n=st.integers(0, 300),
        layout=st.sampled_from(["transformed", "natural"]),
    )
    def test_codegen_backend_equals_vectorized(self, seed, k, n, layout):
        dfa = make_random_dfa(max(k, 4), 3, seed=seed)
        inp = random_input(3, n, seed=seed + 1)
        kwargs = dict(
            k=k, num_blocks=1, threads_per_block=32, layout=layout,
            lookback=2, price=False,
        )
        rv = repro.run_speculative(dfa, inp, **kwargs)
        rc = repro.run_speculative(dfa, inp, backend="codegen", **kwargs)
        assert rv.final_state == rc.final_state == run_reference(dfa, inp)


class TestCudaSource:
    def test_nested_kernel_structure(self):
        plan = plan_kernel(make_random_dfa(20, 3, seed=0), 4)
        src = generate_cuda_kernel(plan, name="k4")
        assert "__global__ void k4" in src
        assert "#define NUM_GUESS 4" in src
        assert "match_spec" in src
        assert "probe_hash" not in src
        assert "#pragma unroll" in src
        assert "__shfl_down_sync" in src

    def test_hash_kernel_structure(self):
        plan = plan_kernel(make_random_dfa(40, 3, seed=0), 16)
        src = generate_cuda_kernel(plan)
        assert "build_hash" in src and "probe_hash" in src
        assert "HASH_SIZE" in src

    def test_cache_code_only_when_enabled(self):
        dfa = make_random_dfa(50, 4, seed=1)
        with_cache = generate_cuda_kernel(plan_kernel(dfa, 4, cache_table=True))
        without = generate_cuda_kernel(plan_kernel(dfa, 4))
        assert "hot_slot" in with_cache
        assert "hot_slot" not in without

    def test_delayed_marking_present(self):
        plan = plan_kernel(make_random_dfa(20, 3, seed=0), 4)
        src = generate_cuda_kernel(plan)
        assert "delayed re-execution" in src

    def test_balanced_braces(self):
        plan = plan_kernel(make_random_dfa(40, 3, seed=0), 16, cache_table=True)
        src = generate_cuda_kernel(plan)
        assert src.count("{") == src.count("}")
