"""Tests for the cost-model-driven k selector (the paper's future work)."""

import numpy as np
import pytest

from repro.apps.div import div7_dfa
from repro.apps.registry import get_application
from repro.core.autotune import KChoice, candidate_ks, choose_k
from repro.workloads.binary import random_bits


class TestCandidates:
    def test_powers_of_two_plus_spec_n(self):
        assert candidate_ks(10) == [1, 2, 4, 8, None]

    def test_capped_at_max_k(self):
        ks = candidate_ks(1000, max_k=8)
        assert ks == [1, 2, 4, 8, None]

    def test_tiny_machine(self):
        assert candidate_ks(2) == [1, None]


class TestChooseK:
    def test_div7_prefers_spec_n(self):
        # Div7: no convergence, tiny state count -> the paper uses spec-N.
        dfa = div7_dfa()
        bits = random_bits(400_000, rng=0)
        choice = choose_k(dfa, bits, probe_items=100_000, lookback=0)
        assert choice.k is None
        assert choice.label == "spec-N"

    def test_regex2_prefers_small_k(self):
        app = get_application("regex2")
        dfa, inputs = app.build_instance(400_000, seed=1)
        choice = choose_k(dfa, inputs, probe_items=100_000,
                          lookback=app.default_lookback)
        assert choice.k == 1  # paper's Figure 13

    def test_regex1_prefers_larger_k(self):
        app = get_application("regex1")
        dfa, inputs = app.build_instance(400_000, seed=1)
        choice = choose_k(dfa, inputs, probe_items=100_000,
                          lookback=app.default_lookback,
                          candidates=[1, 2, 4, 8])
        assert choice.k == 8  # success reaches ~1.0 only at k=8 (Fig. 12)

    def test_choice_close_to_exhaustive(self):
        # the tuner's pick must be within 10% of the best candidate
        app = get_application("huffman")
        dfa, inputs = app.build_instance(300_000, seed=2)
        choice = choose_k(dfa, inputs, probe_items=150_000, lookback=16,
                          candidates=[1, 4, 8])
        speeds = {k: v[0] for k, v in choice.per_k.items()}
        assert choice.modeled_speedup >= 0.9 * max(speeds.values())

    def test_per_k_reports_all_candidates(self):
        dfa = div7_dfa()
        bits = random_bits(200_000, rng=0)
        choice = choose_k(dfa, bits, probe_items=50_000,
                          candidates=[1, 2, None])
        assert set(choice.per_k) == {1, 2, None}
        for speedup, success in choice.per_k.values():
            assert speedup > 0 and 0 <= success <= 1

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            choose_k(div7_dfa(), np.zeros(0, dtype=np.int32))

    def test_returns_kchoice(self):
        dfa = div7_dfa()
        bits = random_bits(100_000, rng=0)
        choice = choose_k(dfa, bits, probe_items=50_000, candidates=[2, None])
        assert isinstance(choice, KChoice)


class TestChooseRoute:
    def _machines(self, sizes, num_inputs=4, seed=0):
        from repro.fsm.dfa import DFA

        return [
            DFA.random(s, num_inputs, rng=seed + i, name=f"r{i}")
            for i, s in enumerate(sizes)
        ]

    def test_measures_both_routes_when_product_fits(self):
        from repro.core.autotune import RouteChoice, choose_route

        machines = self._machines([2, 3])
        rng = np.random.default_rng(0)
        inputs = rng.integers(0, 4, size=20_000).astype(np.int32)
        choice = choose_route(machines, inputs, repeats=1, probe_items=4096)
        assert isinstance(choice, RouteChoice)
        assert choice.route in ("batched", "product")
        assert set(choice.measured_s) >= {"batched", "product"}
        assert choice.product_states is not None

    def test_budget_excludes_product(self):
        from repro.core.autotune import choose_route

        machines = self._machines([5, 6, 7], seed=10)
        rng = np.random.default_rng(1)
        inputs = rng.integers(0, 4, size=10_000).astype(np.int32)
        choice = choose_route(
            machines, inputs, repeats=1, probe_items=4096, product_budget=4
        )
        assert choice.route == "batched"
        assert "product" not in choice.measured_s

    def test_empty_input_rejected(self):
        from repro.core.autotune import choose_route

        with pytest.raises(ValueError):
            choose_route(
                self._machines([2, 2], seed=20),
                np.zeros(0, dtype=np.int32),
            )
