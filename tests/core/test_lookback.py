"""Tests for look-back speculation."""

import numpy as np
import pytest

from repro.apps.div import div7_dfa
from repro.core.lookback import (
    enumerative_spec,
    speculate,
    state_prior,
    state_ranking,
)
from repro.workloads.chunking import plan_chunks
from tests.conftest import make_random_dfa, random_input


class TestPriorAndRanking:
    def test_prior_is_distribution(self):
        dfa = make_random_dfa(6, 2, seed=0)
        p = state_prior(dfa, sample=random_input(2, 500, seed=1))
        assert p.shape == (6,)
        assert p.sum() == pytest.approx(1.0)
        assert p.min() > 0  # smoothing

    def test_prior_without_sample_is_stationary(self):
        dfa = div7_dfa()
        p = state_prior(dfa)
        np.testing.assert_allclose(p, np.full(7, 1 / 7), atol=1e-6)

    def test_ranking_permutation(self):
        dfa = make_random_dfa(8, 2, seed=1)
        r = state_ranking(dfa, sample=random_input(2, 300, seed=2))
        assert sorted(r.tolist()) == list(range(8))

    def test_ranking_orders_by_frequency(self):
        dfa = make_random_dfa(6, 2, seed=2)
        sample = random_input(2, 2000, seed=3)
        from repro.fsm.analysis import dynamic_state_frequency

        freq = dynamic_state_frequency(dfa, sample)
        rank = state_ranking(dfa, sample=sample)
        assert rank[freq.argmax()] == 0


class TestEnumerative:
    def test_all_states_every_chunk(self):
        dfa = div7_dfa()
        spec = enumerative_spec(dfa, 5)
        assert spec.shape == (5, 7)
        for row in spec:
            assert sorted(row.tolist()) == list(range(7))


class TestSpeculate:
    def test_shape_and_dtype(self):
        dfa = make_random_dfa(10, 3, seed=0)
        inp = random_input(3, 1000, seed=1)
        plan = plan_chunks(1000, 8)
        spec = speculate(dfa, inp, plan, 4)
        assert spec.shape == (8, 4)
        assert spec.dtype == np.int32

    def test_chunk0_starts_true(self):
        dfa = make_random_dfa(10, 3, seed=0)
        inp = random_input(3, 1000, seed=1)
        spec = speculate(dfa, inp, plan_chunks(1000, 8), 4)
        assert spec[0, 0] == dfa.start

    def test_rows_distinct(self):
        dfa = make_random_dfa(10, 3, seed=5)
        inp = random_input(3, 500, seed=2)
        spec = speculate(dfa, inp, plan_chunks(500, 6), 5)
        for row in spec:
            assert len(set(row.tolist())) == 5

    def test_k_bounds(self):
        dfa = make_random_dfa(4, 2, seed=0)
        inp = random_input(2, 100, seed=0)
        plan = plan_chunks(100, 2)
        with pytest.raises(ValueError):
            speculate(dfa, inp, plan, 0)
        with pytest.raises(ValueError):
            speculate(dfa, inp, plan, 5)

    def test_negative_lookback(self):
        dfa = make_random_dfa(4, 2, seed=0)
        with pytest.raises(ValueError):
            speculate(dfa, random_input(2, 100, seed=0), plan_chunks(100, 2), 2,
                      lookback=-1)

    def test_lookback_zero_uses_prior_only(self):
        dfa = make_random_dfa(6, 2, seed=1)
        inp = random_input(2, 600, seed=3)
        prior = np.array([0.5, 0.2, 0.1, 0.1, 0.05, 0.05])
        spec = speculate(dfa, inp, plan_chunks(600, 4), 2,
                         lookback=0, prior=prior)
        # every non-initial chunk speculates the two most likely states
        for row in spec[1:]:
            assert set(row.tolist()) == {0, 1}

    def test_deterministic_suffix_pins_state(self):
        # A machine where one symbol maps everything to state 3: after a
        # look-back window ending in that symbol, speculation must pick 3.
        table = np.array([[1, 2, 3, 0], [3, 3, 3, 3]], dtype=np.int32)
        from repro.fsm.dfa import DFA

        dfa = DFA(table=table, start=0, accepting=np.zeros(4, dtype=bool))
        inp = np.array([0, 0, 0, 1, 0, 0, 1, 0], dtype=np.int32)
        plan = plan_chunks(8, 2)  # chunk 1 starts at 4, preceded by symbol 1
        spec = speculate(dfa, inp, plan, 1, lookback=1)
        assert spec[1, 0] == 3

    def test_div7_flat_posterior_covers_k_by_rank(self):
        dfa = div7_dfa()
        inp = random_input(2, 700, seed=4)
        spec = speculate(dfa, inp, plan_chunks(700, 5), 3, lookback=4)
        # no convergence: posterior flat, so top-3 by rank, identical rows
        for row in spec[1:]:
            assert len(set(row.tolist())) == 3

    def test_lookback_clipped_at_input_start(self):
        dfa = make_random_dfa(5, 2, seed=2)
        inp = random_input(2, 10, seed=5)
        # chunk 1 starts at item 5; lookback 100 must clip, not crash
        spec = speculate(dfa, inp, plan_chunks(10, 2), 2, lookback=100)
        assert spec.shape == (2, 2)

    def test_stats_lookback_counter(self):
        from repro.core.types import ExecStats

        dfa = make_random_dfa(5, 2, seed=2)
        inp = random_input(2, 100, seed=5)
        stats = ExecStats()
        speculate(dfa, inp, plan_chunks(100, 4), 2, lookback=8, stats=stats)
        assert stats.lookback_symbols == 3 * 8  # chunks 1..3, full windows

    def test_bad_prior_shape(self):
        dfa = make_random_dfa(5, 2, seed=2)
        with pytest.raises(ValueError, match="prior"):
            speculate(dfa, random_input(2, 50, seed=0), plan_chunks(50, 2), 2,
                      prior=np.ones(3))
