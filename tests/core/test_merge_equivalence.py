"""Property tests: every merge/config combination equals the serial run.

This is the central correctness property of the whole system (DESIGN.md
section 4): for any DFA, input, speculation width, chunking, merge kind,
check implementation, re-execution strategy and layout, the speculative
engine's final state equals the trusted sequential reference.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

import repro
from repro.fsm.dfa import DFA
from repro.fsm.run import run_reference


@st.composite
def engine_case(draw):
    num_states = draw(st.integers(2, 9))
    num_inputs = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(0, 600))
    k = draw(st.integers(1, num_states))
    blocks = draw(st.integers(1, 3))
    tpb = draw(st.sampled_from([32, 64]))
    merge = draw(st.sampled_from(["sequential", "parallel"]))
    check = draw(st.sampled_from(["auto", "nested", "hash"]))
    reexec = draw(st.sampled_from(["delayed", "eager"]))
    layout = draw(st.sampled_from(["transformed", "natural"]))
    lookback = draw(st.integers(0, 6))
    dfa = DFA.random(num_states, num_inputs, rng=seed)
    inp = (
        np.random.default_rng(seed + 1)
        .integers(0, num_inputs, size=n)
        .astype(np.int32)
    )
    return dfa, inp, dict(
        k=k, num_blocks=blocks, threads_per_block=tpb, merge=merge,
        check=check, reexec=reexec, layout=layout, lookback=lookback,
    )


@settings(max_examples=120, deadline=None)
@given(case=engine_case())
def test_final_state_equals_reference(case):
    dfa, inp, kwargs = case
    result = repro.run_speculative(dfa, inp, price=False, **kwargs)
    assert result.final_state == run_reference(dfa, inp)


@settings(max_examples=60, deadline=None)
@given(case=engine_case())
def test_spec_n_equals_reference(case):
    dfa, inp, kwargs = case
    kwargs["k"] = None  # enumerative
    result = repro.run_speculative(dfa, inp, price=False, **kwargs)
    assert result.final_state == run_reference(dfa, inp)
    # spec-N speculation can never miss
    if kwargs["merge"] == "sequential" or inp.size:
        assert result.stats.success_rate == 1.0


@settings(max_examples=60, deadline=None)
@given(case=engine_case())
def test_true_starts_are_true(case):
    dfa, inp, kwargs = case
    result = repro.run_speculative(dfa, inp, price=False, **kwargs)
    assert result.true_starts is not None
    # verify a random boundary against a prefix run
    n_chunks = result.true_starts.size
    if n_chunks > 1 and inp.size:
        from repro.workloads.chunking import plan_chunks

        plan = plan_chunks(inp.size, n_chunks)
        c = n_chunks // 2
        prefix = inp[: plan.starts[c]]
        assert result.true_starts[c] == run_reference(dfa, prefix)


@settings(max_examples=40, deadline=None)
@given(case=engine_case())
def test_delayed_never_reexecutes_more_than_eager(case):
    dfa, inp, kwargs = case
    if kwargs["merge"] != "parallel":
        return
    kwargs_d = dict(kwargs, reexec="delayed")
    kwargs_e = dict(kwargs, reexec="eager")
    rd = repro.run_speculative(dfa, inp, price=False, **kwargs_d)
    re_ = repro.run_speculative(dfa, inp, price=False, **kwargs_e)
    assert rd.final_state == re_.final_state
    # Delayed's necessary re-executions never exceed eager's total work.
    assert rd.stats.fixup_items <= re_.stats.reexec_items_eager or (
        re_.stats.reexec_items_eager == 0 and rd.stats.fixup_items == 0
    )


@settings(max_examples=40, deadline=None)
@given(case=engine_case())
def test_check_implementation_does_not_change_result(case):
    dfa, inp, kwargs = case
    rn = repro.run_speculative(dfa, inp, price=False, **dict(kwargs, check="nested"))
    rh = repro.run_speculative(dfa, inp, price=False, **dict(kwargs, check="hash"))
    assert rn.final_state == rh.final_state
