"""Tests for the native-compiled hot path (repro.core.native).

Every kernel the C generator emits is property-tested for bit-exactness
against :func:`repro.fsm.run.run_reference` and the NumPy kernel layer —
across applications, stride widths, collapse on/off, ragged tails,
chunks shorter than the stride, and empty chunks — and the JIT cache is
tested for warm restarts (a second process performs zero compiles) and
atomicity under concurrent compilers. Tests that need a provider skip
cleanly when none exists (the ``CC=/bin/false`` CI leg).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.apps.registry import get_application
from repro.core.autotune import choose_backend
from repro.core.convergence import CollapseConfig
from repro.core.engine import run_speculative, run_speculative_batch
from repro.core.kernels import plan_kernel, process_chunks_kernel
from repro.core.lookback import speculate
from repro.core.merge_par import compose_maps
from repro.core.mp_executor import ScaleoutPool
from repro.core.native import (
    ABI_VERSION,
    NativeSpec,
    UNROLL_LIMIT,
    cache_key,
    clear_memory_cache,
    find_compiler,
    generate_source,
    load_artifact,
    load_native_plan,
    native_available,
    reset_build_state,
)
from repro.core.native.build import ensure_artifact
from repro.fsm.run import run_reference
from repro.workloads.chunking import plan_chunks, plan_from_lengths
from tests.conftest import make_random_dfa, random_input

def _probe_native() -> bool:
    """Whether a provider actually *works* (``CC=/bin/false`` resolves via
    ``which`` but fails every build, so probe with a real load once)."""
    if not native_available():
        return False
    return load_native_plan(make_random_dfa(4, 3, seed=0), k=2) is not None


HAVE_NATIVE = _probe_native()
needs_native = pytest.mark.skipif(
    not HAVE_NATIVE, reason="no working native provider (compiler or numba)"
)


def _load(dfa, k, *, kernel="auto", collapse=None, **kw):
    nk = load_native_plan(dfa, k=k, kernel=kernel, collapse=collapse, **kw)
    assert nk is not None, "native kernel failed to load with a provider"
    return nk


# --------------------------------------------------------------------------- #
# code generation
# --------------------------------------------------------------------------- #


class TestCodegen:
    def test_source_unrolls_small_k(self):
        src = generate_source(NativeSpec(k=3, m=2, num_classes=4, num_states=9))
        assert "s0" in src and "s2" in src and "int32_t st[" not in src

    def test_source_array_lanes_large_k(self):
        src = generate_source(
            NativeSpec(k=UNROLL_LIMIT + 2, m=1, num_classes=4, num_states=20)
        )
        assert "st[" in src

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            NativeSpec(k=0, m=1, num_classes=2, num_states=2)
        with pytest.raises(ValueError):
            NativeSpec(k=2, m=0, num_classes=2, num_states=2)

    def test_cache_key_axes_distinct(self):
        base = dict(k=4, kernel="stride2:m2", collapse="off")
        k0 = cache_key("fp", **base)
        assert k0 != cache_key("fp2", **base)
        assert k0 != cache_key("fp", **{**base, "k": 5})
        assert k0 != cache_key("fp", **{**base, "collapse": "on(W=32,B=2)"})
        assert k0 != cache_key("fp", **base, abi=ABI_VERSION + 1)


# --------------------------------------------------------------------------- #
# bit-exactness of the compiled kernels
# --------------------------------------------------------------------------- #


@needs_native
class TestBitExact:
    @pytest.mark.parametrize("kernel", ["lockstep", "stride2", "stride4"])
    @pytest.mark.parametrize("collapse", [None, CollapseConfig(cadence=16)])
    def test_process_chunks_matches_numpy(self, kernel, collapse):
        dfa = make_random_dfa(18, 12, seed=3)
        inputs = random_input(12, 40_000, seed=4)
        plan = plan_chunks(inputs.size, 32)
        k = 4
        spec = speculate(dfa, inputs, plan, k, lookback=8)
        kplan = plan_kernel(
            dfa, chunk_len=plan.max_len, num_chunks=plan.num_chunks,
            k=k, kernel=kernel,
        )
        nk = _load(dfa, k, kernel=kernel, collapse=collapse)
        end_native = nk.process_chunks(inputs, plan, spec)
        end_numpy = process_chunks_kernel(dfa, inputs, plan, spec, kplan)
        assert np.array_equal(end_native, end_numpy)

    @pytest.mark.parametrize("app", ["huffman", "regex1", "div7"])
    def test_run_segment_matches_reference(self, app):
        dfa, inputs = get_application(app).build_instance(20_000, seed=5)
        nk = _load(dfa, 4)
        for start in range(min(dfa.num_states, 6)):
            assert nk.run_segment(inputs, start) == run_reference(
                dfa, inputs, start=start
            )

    def test_ragged_short_and_empty_chunks(self):
        # Lengths below the stride, a zero-length chunk, and ragged tails.
        dfa = make_random_dfa(9, 5, seed=6)
        lengths = np.array([1, 0, 3, 4097, 2, 777, 5], dtype=np.int64)
        plan = plan_from_lengths(lengths)
        inputs = random_input(5, int(lengths.sum()), seed=7)
        k = 3
        spec = np.stack(
            [np.arange(k, dtype=np.int32) % dfa.num_states] * plan.num_chunks
        )
        nk = _load(dfa, k, kernel="stride4")
        end = nk.process_chunks(inputs, plan, spec)
        for c in range(plan.num_chunks):
            seg = inputs[plan.chunk_slice(c)]
            for j in range(k):
                assert end[c, j] == run_reference(
                    dfa, seg, start=int(spec[c, j])
                )

    def test_large_k_array_lane_path(self):
        dfa = make_random_dfa(14, 6, seed=8)
        inputs = random_input(6, 15_000, seed=9)
        k = UNROLL_LIMIT + 4  # forces the st[]-loop variant
        plan = plan_chunks(inputs.size, 8)
        spec = speculate(dfa, inputs, plan, k, lookback=8)
        nk = _load(dfa, k)
        end = nk.process_chunks(inputs, plan, spec)
        for c in (0, plan.num_chunks - 1):
            seg = inputs[plan.chunk_slice(c)]
            for j in range(k):
                assert end[c, j] == run_reference(
                    dfa, seg, start=int(spec[c, j])
                )

    def test_empty_segment_run(self):
        dfa = make_random_dfa(7, 4, seed=10)
        nk = _load(dfa, 2)
        assert nk.run_segment(np.zeros(0, dtype=np.int32), 5) == 5

    def test_fold_maps_matches_python_fold(self):
        dfa = make_random_dfa(16, 8, seed=11)
        inputs = random_input(8, 30_000, seed=12)
        plan = plan_chunks(inputs.size, 24)
        k = 4
        rng = np.random.default_rng(13)
        # Random speculation rows force genuine misses in the fold.
        spec = rng.integers(
            0, dfa.num_states, size=(plan.num_chunks, k)
        ).astype(np.int32)
        kplan = plan_kernel(
            dfa, chunk_len=plan.max_len, num_chunks=plan.num_chunks, k=k,
        )
        end = process_chunks_kernel(dfa, inputs, plan, spec, kplan)
        converged = np.zeros(plan.num_chunks, dtype=bool)
        converged[5] = bool((end[5] == end[5, 0]).all())

        # Python reference fold (the pool worker's NumPy loop).
        cur = end[0][None, :].copy()
        valid = np.ones((1, k), dtype=bool)
        for c in range(1, plan.num_chunks):
            if converged[c]:
                cur = np.full_like(cur, end[c, 0])
                continue
            nxt, found, _ = compose_maps(
                cur, valid, spec[c][None, :], end[c][None, :], valid
            )
            for j in np.flatnonzero(~found[0]):
                nxt[0, j] = run_reference(
                    dfa, inputs[plan.chunk_slice(c)], start=int(cur[0, j])
                )
            cur = nxt

        nk = _load(dfa, k)
        row, counters = nk.fold_maps(
            spec, end, inputs, plan.starts, plan.lengths, converged=converged
        )
        assert np.array_equal(row, cur[0])
        assert counters.reexec_chunks > 0  # random rows must have missed


# --------------------------------------------------------------------------- #
# engine integration
# --------------------------------------------------------------------------- #


@needs_native
class TestEngineBackend:
    @pytest.mark.parametrize("schedule", ["barrier", "ooo"])
    @pytest.mark.parametrize("merge", ["parallel", "sequential"])
    def test_native_equals_vectorized(self, schedule, merge):
        dfa = make_random_dfa(20, 10, seed=14)
        inputs = random_input(10, 60_000, seed=15)
        kw = dict(
            k=4, num_blocks=2, threads_per_block=32, merge=merge,
            schedule=schedule, price=False,
        )
        rn = run_speculative(dfa, inputs, backend="native", **kw)
        rv = run_speculative(dfa, inputs, backend="vectorized", **kw)
        assert rn.final_state == rv.final_state == run_reference(dfa, inputs)
        assert rn.config.backend == "native"

    def test_batch_native_matches(self):
        dfa = make_random_dfa(12, 6, seed=16)
        rng = np.random.default_rng(17)
        segs = [
            rng.integers(0, 6, size=n, dtype=np.int32)
            for n in (0, 100, 9_000, 3)
        ]
        starts = [0, 2, 5, 1]
        nk = _load(dfa, 4)
        res = run_speculative_batch(dfa, segs, starts=starts, k=4, native=nk)
        for i, (seg, s0) in enumerate(zip(segs, starts)):
            assert res.final_states[i] == run_reference(dfa, seg, start=s0)

    def test_kernels_native_param(self):
        dfa = make_random_dfa(10, 5, seed=18)
        inputs = random_input(5, 20_000, seed=19)
        plan = plan_chunks(inputs.size, 16)
        spec = speculate(dfa, inputs, plan, 4, lookback=8)
        kplan = plan_kernel(
            dfa, chunk_len=plan.max_len, num_chunks=plan.num_chunks, k=4,
        )
        nk = _load(dfa, 4)
        assert np.array_equal(
            process_chunks_kernel(dfa, inputs, plan, spec, kplan, native=nk),
            process_chunks_kernel(dfa, inputs, plan, spec, kplan),
        )


# --------------------------------------------------------------------------- #
# the JIT cache
# --------------------------------------------------------------------------- #


class TestCache:
    @needs_native
    def test_memory_cache_returns_same_object(self):
        dfa = make_random_dfa(8, 4, seed=20)
        kplan = plan_kernel(dfa, chunk_len=1 << 12, num_chunks=16, k=2)
        a = load_native_plan(dfa, k=2, kplan=kplan)
        b = load_native_plan(dfa, k=2, kplan=kplan)
        assert a is not None and a is b

    @pytest.mark.skipif(
        find_compiler() is None, reason="needs a real C compiler"
    )
    def test_warm_start_second_process_zero_compiles(self, tmp_path):
        """Acceptance: a restarted process with a warm disk cache never
        invokes the compiler (asserted via the native.compile stats)."""
        code = """
import json, sys
import numpy as np
from repro.core.native import load_native_plan
from repro.core.native.build import build_stats
from repro.fsm.dfa import DFA
from repro.fsm.run import run_reference
dfa = DFA.random(11, 7, rng=42)
rng = np.random.default_rng(1)
inputs = rng.integers(0, 7, size=30_000, dtype=np.int32)
nk = load_native_plan(dfa, k=4)
assert nk is not None, "load failed"
assert nk.run_segment(inputs, 0) == run_reference(dfa, inputs)
print(json.dumps(build_stats()))
"""
        env = dict(
            os.environ,
            REPRO_NATIVE_CACHE=str(tmp_path),
            PYTHONPATH=os.pathsep.join(sys.path),
        )
        env.pop("CC", None)
        cold = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True,
        )
        assert cold.returncode == 0, cold.stderr
        cold_stats = json.loads(cold.stdout.strip().splitlines()[-1])
        warm = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True,
        )
        assert warm.returncode == 0, warm.stderr
        warm_stats = json.loads(warm.stdout.strip().splitlines()[-1])
        if cold_stats["compiles"]:  # ctypes/cffi provider: disk cache rules
            assert warm_stats["compiles"] == 0
            assert warm_stats["hit_disk"] >= 1
        else:  # numba provider: no artifact, nothing to compile either way
            assert warm_stats["compiles"] == 0

    @pytest.mark.skipif(
        find_compiler() is None, reason="needs a real C compiler"
    )
    def test_concurrent_compiles_are_atomic(self, tmp_path):
        spec = NativeSpec(k=2, m=2, num_classes=3, num_states=5)
        key = cache_key("race-fp", k=2, kernel="stride2:m2", collapse="off")
        barrier = threading.Barrier(4)
        paths, errors = [], []

        def compile_one():
            try:
                barrier.wait(timeout=30)
                paths.append(
                    ensure_artifact(
                        key, lambda: generate_source(spec),
                        directory=str(tmp_path),
                    )
                )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=compile_one) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert len(set(paths)) == 1 and os.path.exists(paths[0])
        spec2 = NativeSpec(k=2, m=2, num_classes=3, num_states=5)
        dfa = make_random_dfa(5, 3, seed=1)
        kplan = plan_kernel(
            dfa, chunk_len=1 << 10, num_chunks=4, k=2, kernel="stride2",
        )
        nk = load_artifact(paths[0], (2, 2, 3, 5, 0, 2), kplan)
        # num_classes of this DFA may differ from the raced spec; only the
        # load/ABI handshake is under test here.
        assert nk is None or nk.spec == spec2

    def test_no_compiler_falls_back(self, tmp_path, monkeypatch):
        try:
            import numba  # noqa: F401
            pytest.skip("numba present: the ladder succeeds without cc")
        except ImportError:
            pass
        monkeypatch.setenv("CC", "/bin/false")
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        reset_build_state()
        clear_memory_cache()
        try:
            dfa = make_random_dfa(9, 4, seed=21)
            assert load_native_plan(dfa, k=3) is None
            inputs = random_input(4, 30_000, seed=22)
            res = run_speculative(
                dfa, inputs, k=3, num_blocks=2, threads_per_block=32,
                backend="native", price=False,
            )
            assert res.final_state == run_reference(dfa, inputs)
            assert res.config.backend == "vectorized"  # silent fallback
            from repro.core.native.build import build_stats
            assert build_stats()["fallbacks"] >= 1
        finally:
            reset_build_state()
            clear_memory_cache()


# --------------------------------------------------------------------------- #
# pool integration
# --------------------------------------------------------------------------- #


@needs_native
class TestPoolNative:
    def test_pool_native_equals_numpy(self):
        dfa = make_random_dfa(15, 8, seed=23)
        inputs = random_input(8, 120_000, seed=24)
        ref = run_reference(dfa, inputs)
        for schedule in ("barrier", "ooo"):
            with ScaleoutPool(
                dfa, num_workers=2, k=4, sub_chunks_per_worker=8,
                backend="native",
            ) as pool:
                assert pool.run(inputs, schedule=schedule).final_state == ref

    def test_pool_batch_native(self):
        dfa = make_random_dfa(10, 6, seed=25)
        rng = np.random.default_rng(26)
        segs = [
            rng.integers(0, 6, size=n, dtype=np.int32)
            for n in (0, 500, 40_000, 7)
        ]
        with ScaleoutPool(
            dfa, num_workers=2, k=4, sub_chunks_per_worker=4,
            backend="native",
        ) as pool:
            res = pool.run_batch(segs)
            for i, seg in enumerate(segs):
                assert res.final_states[i] == run_reference(dfa, seg)

    def test_pool_kill_worker_under_native(self):
        from repro.core import faultinject as fi

        dfa, inputs = get_application("huffman").build_instance(
            1 << 16, seed=27
        )
        ref = run_reference(dfa, inputs)
        plan = fi.FaultPlan([fi.kill_worker(0, at_task=0)])
        with ScaleoutPool(
            dfa, num_workers=2, k=8, lookback=16, sub_chunks_per_worker=16,
            collapse="on", fault_plan=plan, backend="native",
        ) as pool:
            res = pool.run(inputs)
            assert res.final_state == ref
            assert res.recovery is not None
            assert res.recovery.worker_deaths == 1
            clean = pool.run(inputs)
            assert clean.final_state == ref and clean.recovery is None

    def test_pool_rejects_bad_backend(self):
        dfa = make_random_dfa(5, 3, seed=28)
        with pytest.raises(ValueError, match="backend"):
            ScaleoutPool(dfa, num_workers=1, backend="cuda")


# --------------------------------------------------------------------------- #
# the measured backend tuner + codegen cache bound
# --------------------------------------------------------------------------- #


class TestChooseBackend:
    def test_backend_choice_is_measured_min(self):
        dfa = make_random_dfa(12, 8, seed=29)
        inputs = random_input(8, 60_000, seed=30)
        choice = choose_backend(
            dfa, inputs, num_chunks=32, k=4, probe_items=inputs.size,
            repeats=1,
        )
        assert "vectorized" in choice.measured_s
        assert choice.backend == min(
            choice.measured_s, key=choice.measured_s.get
        )
        if HAVE_NATIVE:
            assert "native" in choice.measured_s
            assert choice.native_provider is not None
        assert choice.speedup_vs_numpy > 0

    def test_codegen_kernel_cache_bounded(self):
        from repro.core.codegen.pykernel import (
            _KERNEL_CACHE,
            _KERNEL_CACHE_MAX,
            compile_local_kernel,
        )

        for k in range(1, _KERNEL_CACHE_MAX + 10):
            compile_local_kernel(k)
        assert len(_KERNEL_CACHE) <= _KERNEL_CACHE_MAX
        # Most-recently-used entries survive the eviction.
        assert (_KERNEL_CACHE_MAX + 9) in _KERNEL_CACHE


# --------------------------------------------------------------------------- #
# multi-pattern (P-loop) code generation
# --------------------------------------------------------------------------- #


class TestMultiPatternCodegen:
    def test_patterns_baked_as_constant(self):
        spec = NativeSpec(
            k=6, m=1, num_classes=4, num_states=12,
            patterns=3, group_widths=(2, 2, 2),
        )
        src = generate_source(spec)
        assert "#define NK_P 3" in src

    def test_group_collapse_helpers_emitted(self):
        spec = NativeSpec(
            k=6, m=1, num_classes=4, num_states=12, cadence=8,
            patterns=3, group_widths=(1, 2, 3),
        )
        src = generate_source(spec)
        # Group-aware collapse: per-group seeds and a P-lane continuation.
        assert "nk_advance_group" in src
        assert "gs[" in src

    def test_goff_table_only_for_array_lanes(self):
        big = NativeSpec(
            k=UNROLL_LIMIT + 4, m=1, num_classes=4, num_states=40,
            cadence=8, patterns=2,
            group_widths=(UNROLL_LIMIT, 4),
        )
        assert "GOFF" in generate_source(big)
        small = NativeSpec(
            k=4, m=1, num_classes=4, num_states=8, cadence=8,
            patterns=2, group_widths=(2, 2),
        )
        assert "GOFF" not in generate_source(small)

    def test_single_pattern_source_unchanged(self):
        base = NativeSpec(k=4, m=2, num_classes=5, num_states=9, cadence=8)
        explicit = NativeSpec(
            k=4, m=2, num_classes=5, num_states=9, cadence=8,
            patterns=1, group_widths=(4,),
        )
        assert generate_source(base) == generate_source(explicit)

    def test_spec_validation(self):
        # widths must cover k exactly, one width per pattern.
        with pytest.raises(ValueError):
            NativeSpec(
                k=6, m=1, num_classes=4, num_states=12,
                patterns=3, group_widths=(2, 2),
            )
        with pytest.raises(ValueError):
            NativeSpec(
                k=6, m=1, num_classes=4, num_states=12,
                patterns=3, group_widths=(2, 2, 3),
            )
        with pytest.raises(ValueError):
            NativeSpec(
                k=6, m=1, num_classes=4, num_states=12,
                patterns=3, group_widths=(2, 2, 0),
            )
        # k not divisible by patterns requires explicit widths.
        with pytest.raises(ValueError):
            NativeSpec(
                k=7, m=1, num_classes=4, num_states=12, patterns=3,
            )

    def test_collapse_requires_spare_lanes(self):
        # One lane per pattern leaves nothing to collapse.
        spec = NativeSpec(
            k=3, m=1, num_classes=4, num_states=6, cadence=8,
            patterns=3, group_widths=(1, 1, 1),
        )
        assert not spec.collapsing

    def test_pattern_tag_distinguishes_cache_entries(self):
        from repro.core.native.runtime import _pattern_tag

        single = NativeSpec(k=4, m=1, num_classes=4, num_states=8)
        multi = NativeSpec(
            k=4, m=1, num_classes=4, num_states=8,
            patterns=2, group_widths=(2, 2),
        )
        assert _pattern_tag(single) == ""
        tag = _pattern_tag(multi)
        assert "p2" in tag and tag != _pattern_tag(single)

    @needs_native
    def test_group_kernel_meta_roundtrip(self, tmp_path):
        from repro.core.multipattern import run_multipattern
        from repro.fsm.dfa import DFA

        machines = [
            DFA.random(3 + i, 5, rng=70 + i, name=f"n{i}") for i in range(3)
        ]
        rng = np.random.default_rng(70)
        inputs = rng.integers(0, 5, size=6000).astype(np.int32)
        res = run_multipattern(
            machines, inputs, k=3, num_chunks=8, kernel="lockstep",
            backend="native", route="batched",
        )
        for pr, m in zip(res.patterns, machines):
            tr_fin = run_reference(m, inputs)
            assert pr.final_state == tr_fin
