"""Tests for the deterministic fault-injection harness itself.

The harness is trusted infrastructure for every resilience test, so its own
contract gets direct coverage: each fault class fires exactly once at its
configured site (and never re-arms on respawn), and a pool with injection
disabled produces results byte-identical to the seed behaviour.
"""

import numpy as np
import pytest

from repro.core import faultinject as fi
from repro.core.mp_executor import ScaleoutPool
from repro.fsm.run import run_reference
from tests.conftest import make_random_dfa, random_input


class TestSpecs:
    def test_constructors_and_ids(self):
        k = fi.kill_worker(1, at_task=2)
        d = fi.delay_task(0, at_task=0, seconds=0.5)
        c = fi.corrupt_result_map(3)
        u = fi.shm_unlink_race(at_call=2)
        assert (k.kind, k.worker, k.at_task) == ("kill", 1, 2)
        assert (d.kind, d.delay_s) == ("delay", 0.5)
        assert (c.kind, c.worker, c.at_task) == ("corrupt", 3, 0)
        assert (u.kind, u.at_call) == ("shm_unlink", 2)
        ids = {s.fault_id for s in (k, d, c, u)}
        assert len(ids) == 4  # globally unique, even at identical sites

    def test_wire_round_trip(self):
        spec = fi.delay_task(2, at_task=1, seconds=0.125)
        back = fi.FaultSpec.from_wire(spec.to_wire())
        assert back.fault_id == spec.fault_id
        assert back.matches_site(2, 1) and not back.matches_site(2, 0)
        assert back.fired is False  # fired state never travels the wire

    def test_unknown_kind_rejected(self):
        bad = fi.FaultSpec(fault_id="x", kind="meteor")
        with pytest.raises(ValueError):
            fi.FaultPlan([bad])


class TestFaultPlan:
    def test_mark_fired_is_exactly_once(self):
        spec = fi.kill_worker(0)
        plan = fi.FaultPlan([spec])
        assert plan.mark_fired(spec.fault_id) is True
        assert plan.mark_fired(spec.fault_id) is False  # second firing refused
        assert plan.fired_ids == {spec.fault_id}

    def test_fired_specs_leave_the_wire(self):
        kill = fi.kill_worker(0)
        delay = fi.delay_task(1)
        plan = fi.FaultPlan([kill, delay])
        assert len(plan.worker_wire()) == 2
        plan.mark_fired(kill.fault_id)
        wire = plan.worker_wire()
        assert [w[0] for w in wire] == [delay.fault_id]

    def test_parent_faults_by_call(self):
        u1 = fi.shm_unlink_race(at_call=1)
        u3 = fi.shm_unlink_race(at_call=3)
        plan = fi.FaultPlan([u1, u3, fi.kill_worker(0)])
        assert plan.parent_faults(1) == [u1]
        assert plan.parent_faults(2) == []
        plan.mark_fired(u3.fault_id)
        assert plan.parent_faults(3) == []

    def test_corrupt_worker_result_poisons_end_row(self):
        spec_row = np.arange(4, dtype=np.int32)
        end_row = np.arange(4, dtype=np.int32)
        out = fi.corrupt_worker_result((spec_row, end_row, 0, 0, ()))
        assert (out[1] == fi.CORRUPT_SENTINEL).all()
        assert (out[0] == spec_row).all()  # only the ending row is poisoned


class TestExactlyOnceInPool:
    def test_kill_fires_once_across_runs(self):
        """A respawned worker must not re-trigger the already-fired kill."""
        dfa = make_random_dfa(8, 3, seed=0)
        inp = random_input(3, 12_000, seed=1)
        ref = run_reference(dfa, inp)
        plan = fi.FaultPlan([fi.kill_worker(1, at_task=0)])
        with ScaleoutPool(dfa, num_workers=3, k=3,
                          sub_chunks_per_worker=8, fault_plan=plan) as pool:
            first = pool.run(inp)
            second = pool.run(inp)
        assert first.final_state == ref and second.final_state == ref
        assert first.recovery is not None
        assert first.recovery.worker_deaths == 1
        assert first.recovery.faults_fired == 1
        # Run 2 sees a quiet pool: the fault fired exactly once, in run 1.
        assert second.recovery is None
        assert plan.fired_ids == {plan.specs[0].fault_id}

    def test_later_site_fires_on_later_run(self):
        """at_task counts per-worker tasks, so at_task=1 fires on run 2."""
        dfa = make_random_dfa(8, 3, seed=2)
        inp = random_input(3, 12_000, seed=3)
        ref = run_reference(dfa, inp)
        plan = fi.FaultPlan([fi.corrupt_result_map(0, at_task=1)])
        with ScaleoutPool(dfa, num_workers=2, k=3,
                          sub_chunks_per_worker=8, fault_plan=plan) as pool:
            first = pool.run(inp)
            second = pool.run(inp)
            third = pool.run(inp)
        assert (first.final_state, second.final_state, third.final_state) == (
            ref, ref, ref
        )
        assert first.recovery is None
        assert second.recovery is not None
        assert second.recovery.corrupt_results == 1
        assert third.recovery is None

    def test_disabled_injection_is_byte_identical(self, monkeypatch):
        """No plan and no REPRO_CHAOS -> results identical to seed behaviour."""
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        dfa = make_random_dfa(6, 2, seed=4)
        inp = random_input(2, 20_000, seed=5)
        with ScaleoutPool(dfa, num_workers=2, k=2,
                          sub_chunks_per_worker=8) as pool:
            res = pool.run(inp)
        # Seed behaviour: the same pool with supervision off entirely.
        with ScaleoutPool(dfa, num_workers=2, k=2, sub_chunks_per_worker=8,
                          resilience=None) as base_pool:
            base = base_pool.run(inp)
        assert pool._fault_plan.empty
        assert res.final_state == run_reference(dfa, inp)
        assert res.degraded is False
        assert res.recovery is None
        assert res.final_state == base.final_state
        assert res.segment_reexecs == base.segment_reexecs
        assert res.reexec_segments == base.reexec_segments
        assert res.stats.success_hits == base.stats.success_hits
        assert res.stats.success_total == base.stats.success_total


class TestChaosPlan:
    def test_env_unset_means_no_plan(self):
        assert fi.chaos_plan_from_env(4, env={}) is None

    def test_single_worker_pools_are_spared(self):
        assert fi.chaos_plan_from_env(1, env={"REPRO_CHAOS": "7"}) is None

    def test_plan_is_one_seeded_kill(self):
        plan = fi.chaos_plan_from_env(4, env={"REPRO_CHAOS": "7"})
        assert plan is not None and len(plan) == 1
        spec = plan.specs[0]
        assert spec.kind == "kill"
        assert spec.at_task == 0
        assert 0 <= spec.worker < 4
