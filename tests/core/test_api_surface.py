"""Coverage of small public-API surfaces not exercised elsewhere."""

import numpy as np
import pytest

import repro
from repro.bench.runner import ExperimentResult
from repro.core.codegen.select import plan_kernel
from repro.core.lookback import state_ranking
from repro.regex.ast import Alternation, Concat, Literal
from tests.conftest import make_random_dfa, random_input


class TestAstOperators:
    def test_or_builds_alternation(self):
        node = Literal("a") | Literal("b")
        assert isinstance(node, Alternation)
        assert node.options == (Literal("a"), Literal("b"))

    def test_add_builds_concat(self):
        node = Literal("a") + Literal("b")
        assert isinstance(node, Concat)

    def test_operators_compile(self):
        from repro.fsm.alphabet import Alphabet
        from repro.regex.compile import compile_regex

        ab = Alphabet.from_symbols("ab")
        dfa = compile_regex(Literal("a") + (Literal("a") | Literal("b")), ab)
        assert dfa.accepts(ab.encode("ab"))
        assert not dfa.accepts(ab.encode("ba"))


class TestDfaHelpers:
    def test_language_equal_on(self):
        a = make_random_dfa(5, 2, seed=0)
        b = make_random_dfa(5, 2, seed=0)
        inp = random_input(2, 50, seed=1)
        assert a.language_equal_on(b, inp)

    def test_repr_mentions_shape(self):
        dfa = make_random_dfa(5, 2, seed=0).with_name("demo")
        text = repr(dfa)
        assert "states=5" in text and "demo" in text


class TestEngineRankingParam:
    def test_explicit_ranking_used(self):
        dfa = make_random_dfa(6, 2, seed=2)
        inp = random_input(2, 5000, seed=3)
        ranking = state_ranking(dfa, sample=inp[:1000])
        r = repro.run_speculative(dfa, inp, k=2, num_blocks=1,
                                  threads_per_block=32, ranking=ranking,
                                  price=False)
        from repro.fsm.run import run_reference

        assert r.final_state == run_reference(dfa, inp)

    def test_bad_ranking_shape(self):
        dfa = make_random_dfa(6, 2, seed=2)
        inp = random_input(2, 100, seed=3)
        with pytest.raises(ValueError, match="ranking"):
            repro.run_speculative(dfa, inp, k=2, num_blocks=1,
                                  threads_per_block=32,
                                  ranking=np.arange(3), price=False)


class TestHuffmanHelpers:
    def test_num_coded_symbols(self):
        from repro.apps.huffman import HuffmanCode

        code = HuffmanCode.from_frequencies(np.array([3, 0, 2, 0, 1]))
        assert code.num_symbols == 5
        assert code.num_coded_symbols == 3


class TestExperimentResultFormatting:
    def test_to_text_with_columns(self):
        res = ExperimentResult("x", "t", rows=[{"a": 1, "b": 2}])
        text = res.to_text(columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[1]

    def test_notes_rendered(self):
        res = ExperimentResult("x", "t", rows=[{"a": 1}], notes=["hello"])
        assert "note: hello" in res.to_text()


class TestKernelPlanCarriesMachineShape:
    def test_dimensions_recorded(self):
        dfa = make_random_dfa(11, 3, seed=4)
        plan = plan_kernel(dfa, 4)
        assert plan.num_states == 11
        assert plan.num_inputs == 3

    def test_cache_kernel_indexes_rows_by_num_inputs(self):
        from repro.core.codegen.cuda_src import generate_cuda_kernel

        dfa = make_random_dfa(40, 5, seed=5)
        src = generate_cuda_kernel(plan_kernel(dfa, 4, cache_table=True))
        assert "#define NUM_INPUTS 5" in src
        assert "slot * NUM_INPUTS + sym" in src


class TestMpExecutorLookback:
    def test_lookback_param_flows(self):
        from repro.core.mp_executor import run_multiprocess
        from repro.fsm.run import run_reference

        dfa = make_random_dfa(6, 2, seed=6)
        inp = random_input(2, 8000, seed=7)
        res = run_multiprocess(dfa, inp, num_workers=2, k=3,
                               sub_chunks_per_worker=16, lookback=2)
        assert res.final_state == run_reference(dfa, inp)
