"""Tests for the parallel tree merge (delayed & eager re-execution)."""

import numpy as np
import pytest

from repro.core.local import process_chunks
from repro.core.merge_par import merge_parallel
from repro.core.types import ChunkResults, ExecStats
from repro.fsm.run import run_reference, run_reference_trace
from repro.workloads.chunking import plan_chunks
from tests.conftest import make_random_dfa, random_input


def build_results(dfa, inp, chunks, spec):
    plan = plan_chunks(inp.size, chunks)
    end, _ = process_chunks(dfa, inp, plan, spec)
    return plan, ChunkResults(
        spec=spec, end=end, valid=np.ones_like(spec, dtype=bool)
    )


def perfect_spec(dfa, inp, chunks, k=1):
    plan = plan_chunks(inp.size, chunks)
    trace = run_reference_trace(dfa, inp)
    truth = np.concatenate([[dfa.start], trace[plan.starts[1:] - 1]])
    spec = np.empty((chunks, k), dtype=np.int32)
    for c in range(chunks):
        row = [int(truth[c])] + [s for s in range(dfa.num_states) if s != truth[c]]
        spec[c] = row[:k]
    return spec


class TestDelayed:
    def test_perfect_speculation_no_fixup(self):
        dfa = make_random_dfa(6, 2, seed=1)
        inp = random_input(2, 240, seed=2)
        spec = perfect_spec(dfa, inp, 8, k=2)
        plan, results = build_results(dfa, inp, 8, spec)
        stats = ExecStats()
        final, tree = merge_parallel(dfa, inp, plan, results, stats=stats)
        assert final == run_reference(dfa, inp)
        assert stats.fixup_chunks == 0
        assert stats.reexec_chunks_eager == 0

    def test_bad_speculation_fixup_recovers(self):
        dfa = make_random_dfa(7, 2, seed=3)
        inp = random_input(2, 210, seed=4)
        spec = np.full((6, 1), 5, dtype=np.int32)  # wrong almost everywhere
        plan, results = build_results(dfa, inp, 6, spec)
        stats = ExecStats()
        final, _ = merge_parallel(dfa, inp, plan, results, stats=stats)
        assert final == run_reference(dfa, inp)
        assert stats.fixup_chunks > 0

    def test_invalidity_propagates_in_tree(self):
        dfa = make_random_dfa(7, 2, seed=3)
        inp = random_input(2, 200, seed=5)
        spec = np.full((4, 1), 6, dtype=np.int32)
        plan, results = build_results(dfa, inp, 4, spec)
        _, tree = merge_parallel(dfa, inp, plan, results, stats=None)
        # leaves all valid, deeper levels lose entries unless lucky
        assert tree.levels[0].valid.all()

    def test_fixup_chain_tracked(self):
        dfa = make_random_dfa(9, 2, seed=6)
        inp = random_input(2, 300, seed=6)
        spec = np.full((8, 1), 8, dtype=np.int32)
        plan, results = build_results(dfa, inp, 8, spec)
        stats = ExecStats()
        merge_parallel(dfa, inp, plan, results, stats=stats)
        assert stats.fixup_chain >= 1

    def test_tree_depth(self):
        dfa = make_random_dfa(5, 2, seed=0)
        inp = random_input(2, 160, seed=0)
        spec = perfect_spec(dfa, inp, 16)
        plan, results = build_results(dfa, inp, 16, spec)
        _, tree = merge_parallel(dfa, inp, plan, results, stats=None)
        assert len(tree.levels) == 5  # 16 -> 8 -> 4 -> 2 -> 1
        assert tree.root.num_segments == 1


class TestEager:
    def test_eager_always_valid(self):
        dfa = make_random_dfa(7, 2, seed=3)
        inp = random_input(2, 210, seed=4)
        spec = np.full((6, 1), 5, dtype=np.int32)
        spec[0, 0] = dfa.start
        plan, results = build_results(dfa, inp, 6, spec)
        stats = ExecStats()
        final, tree = merge_parallel(
            dfa, inp, plan, results, reexec="eager", stats=stats
        )
        assert final == run_reference(dfa, inp)
        assert tree.root.valid.all()
        assert stats.fixup_chunks == 0  # eager never needs fix-up

    def test_eager_does_more_work_than_delayed(self):
        from repro.apps.div import div7_dfa

        dfa = div7_dfa()
        inp = random_input(2, 700, seed=7)
        rng = np.random.default_rng(0)
        spec = np.stack([rng.permutation(7)[:2] for _ in range(16)]).astype(np.int32)
        spec[0, 0] = dfa.start
        plan, results = build_results(dfa, inp, 16, spec)
        s_eager, s_delay = ExecStats(), ExecStats()
        f1, _ = merge_parallel(dfa, inp, plan, results, reexec="eager", stats=s_eager)
        f2, _ = merge_parallel(dfa, inp, plan, results, reexec="delayed", stats=s_delay)
        ref = run_reference(dfa, inp)
        assert f1 == f2 == ref
        assert (
            s_eager.reexec_items_eager
            >= s_delay.fixup_items
        )

    def test_eager_wall_items_bounded_by_total(self):
        dfa = make_random_dfa(8, 2, seed=9)
        inp = random_input(2, 320, seed=8)
        spec = np.full((8, 1), 7, dtype=np.int32)
        spec[0, 0] = dfa.start
        plan, results = build_results(dfa, inp, 8, spec)
        stats = ExecStats()
        merge_parallel(dfa, inp, plan, results, reexec="eager", stats=stats)
        assert stats.reexec_wall_items <= stats.reexec_items_eager


class TestStructure:
    def test_invalid_reexec_mode(self):
        dfa = make_random_dfa(4, 2, seed=0)
        inp = random_input(2, 40, seed=0)
        spec = perfect_spec(dfa, inp, 4)
        plan, results = build_results(dfa, inp, 4, spec)
        with pytest.raises(ValueError, match="reexec"):
            merge_parallel(dfa, inp, plan, results, reexec="lazy")

    def test_odd_chunk_count_carry(self):
        dfa = make_random_dfa(5, 2, seed=2)
        inp = random_input(2, 250, seed=3)
        for chunks in (3, 5, 7, 9, 11):
            spec = perfect_spec(dfa, inp, chunks, k=2)
            plan, results = build_results(dfa, inp, chunks, spec)
            final, _ = merge_parallel(dfa, inp, plan, results, stats=None)
            assert final == run_reference(dfa, inp), f"chunks={chunks}"

    def test_single_chunk(self):
        dfa = make_random_dfa(5, 2, seed=2)
        inp = random_input(2, 50, seed=3)
        spec = perfect_spec(dfa, inp, 1, k=2)
        plan, results = build_results(dfa, inp, 1, spec)
        final, tree = merge_parallel(dfa, inp, plan, results, stats=None)
        assert final == run_reference(dfa, inp)
        assert len(tree.levels) == 1

    def test_level_attribution(self):
        dfa = make_random_dfa(5, 2, seed=2)
        inp = random_input(2, 640, seed=3)
        spec = perfect_spec(dfa, inp, 64)
        plan, results = build_results(dfa, inp, 64, spec)
        stats = ExecStats()
        merge_parallel(
            dfa, inp, plan, results, threads_per_block=32, warp_size=32, stats=stats
        )
        # 64 chunks, 32-thread blocks: 5 warp levels, 0 block levels, 2 blocks
        assert stats.merge_levels_warp == 5
        assert stats.merge_levels_block == 0
        assert stats.merge_global_steps == 2

    def test_composition_associativity(self):
        # The tree's root map must equal a plain left-fold of the chunk
        # maps — composition of speculation maps is associative, so tree
        # shape cannot matter.
        from repro.gpu.simulate import SimCounters, _compose

        dfa = make_random_dfa(7, 2, seed=12)
        inp = random_input(2, 350, seed=13)
        rng = np.random.default_rng(2)
        chunks = 10
        spec = np.stack([rng.permutation(7)[:3] for _ in range(chunks)]).astype(np.int32)
        spec[0, 0] = dfa.start
        plan, results = build_results(dfa, inp, chunks, spec)
        _, tree = merge_parallel(dfa, inp, plan, results, stats=None)

        counters = SimCounters()
        s, e, v = (
            results.spec[0].copy(),
            results.end[0].copy(),
            results.valid[0].copy(),
        )
        for c in range(1, chunks):
            s, e, v = _compose(
                s, e, v,
                results.spec[c], results.end[c], results.valid[c], counters,
            )
        root = tree.root
        np.testing.assert_array_equal(v, root.valid[0])
        np.testing.assert_array_equal(e[v], root.end[0][root.valid[0]])

    def test_pair_ops_counted(self):
        dfa = make_random_dfa(5, 2, seed=2)
        inp = random_input(2, 160, seed=3)
        spec = perfect_spec(dfa, inp, 16)
        plan, results = build_results(dfa, inp, 16, spec)
        stats = ExecStats()
        merge_parallel(dfa, inp, plan, results, stats=stats)
        assert stats.merge_pair_ops == 15  # 8+4+2+1


class TestComposeMaps:
    def test_matches_scalar_compose(self):
        from repro.core.merge_par import compose_maps
        from repro.gpu.simulate import SimCounters, _compose

        rng = np.random.default_rng(7)
        for _ in range(20):
            k = int(rng.integers(1, 6))
            spec_l = rng.integers(0, 8, size=k).astype(np.int32)
            end_l = rng.integers(0, 8, size=k).astype(np.int32)
            valid_l = rng.random(k) < 0.8
            spec_r = rng.integers(0, 8, size=k).astype(np.int32)
            end_r = rng.integers(0, 8, size=k).astype(np.int32)
            valid_r = rng.random(k) < 0.8
            _, want_end, want_valid = _compose(
                spec_l, end_l, valid_l, spec_r, end_r, valid_r, SimCounters()
            )
            got_end, got_valid, _ = compose_maps(
                end_l[None], valid_l[None], spec_r[None], end_r[None], valid_r[None]
            )
            np.testing.assert_array_equal(got_valid[0], want_valid)
            np.testing.assert_array_equal(got_end[0][got_valid[0]],
                                          want_end[want_valid])

    def test_miss_keeps_left_end_invalid(self):
        from repro.core.merge_par import compose_maps

        end_l = np.array([[3]], dtype=np.int32)
        valid = np.ones((1, 1), dtype=bool)
        end, ok, _ = compose_maps(
            end_l, valid, np.array([[5]], dtype=np.int32),
            np.array([[6]], dtype=np.int32), valid,
        )
        assert not ok[0, 0]
        assert end[0, 0] == 3  # left ending state carried for re-execution


class TestLevelAttributionCeil:
    def test_partial_block_counts_as_global_step(self):
        # Regression: 300 chunks at 256 threads/block occupy 2 blocks, so
        # the across-block sequential stage walks 2 results; floor division
        # used to report num_blocks=1 and zero global steps.
        dfa = make_random_dfa(5, 2, seed=2)
        inp = random_input(2, 1500, seed=3)
        spec = perfect_spec(dfa, inp, 300)
        plan, results = build_results(dfa, inp, 300, spec)
        stats = ExecStats()
        merge_parallel(
            dfa, inp, plan, results, threads_per_block=256, warp_size=32,
            stats=stats,
        )
        assert stats.merge_levels_warp == 5
        assert stats.merge_levels_block == 3
        assert stats.merge_global_steps == 2

    def test_exact_multiple_unchanged(self):
        dfa = make_random_dfa(5, 2, seed=2)
        inp = random_input(2, 1280, seed=3)
        spec = perfect_spec(dfa, inp, 256)
        plan, results = build_results(dfa, inp, 256, spec)
        stats = ExecStats()
        merge_parallel(
            dfa, inp, plan, results, threads_per_block=256, warp_size=32,
            stats=stats,
        )
        assert stats.merge_global_steps == 0  # one full block: no global walk


class TestFixupObservability:
    def test_tree_records_reexecuted_chunks(self):
        dfa = make_random_dfa(7, 2, seed=3)
        inp = random_input(2, 210, seed=4)
        spec = np.full((6, 1), 5, dtype=np.int32)
        spec[0, 0] = dfa.start
        plan, results = build_results(dfa, inp, 6, spec)
        stats = ExecStats()
        final, tree = merge_parallel(dfa, inp, plan, results, stats=stats)
        assert final == run_reference(dfa, inp)
        assert len(tree.reexecuted) == stats.fixup_chunks
        assert 0 not in tree.reexecuted  # chunk 0 speculated the true start

    def test_clean_merge_records_nothing(self):
        dfa = make_random_dfa(6, 2, seed=1)
        inp = random_input(2, 240, seed=2)
        spec = perfect_spec(dfa, inp, 8, k=2)
        plan, results = build_results(dfa, inp, 8, spec)
        _, tree = merge_parallel(dfa, inp, plan, results, stats=None)
        assert tree.reexecuted == []
