"""Multi-pattern engine tests: batched union stepping, product route,
request batching, pool scale-out, and engine delegation.

Every route and every kernel/schedule combination must be bit-exact
against the per-pattern sequential reference — same final states, same
acceptance, same match positions.
"""

import numpy as np

import pytest

import repro
from repro.core.multipattern import (
    MachineStack,
    MultiPatternResult,
    run_multipattern,
    run_multipattern_batch,
    stack_machines,
)
from repro.core.mp_executor import ScaleoutPool
from repro.fsm import DFA
from repro.fsm.run import run_reference_trace, run_segment


def _group(sizes, num_inputs=6, seed=0):
    return [
        DFA.random(s, num_inputs, rng=seed + 10 * i, name=f"p{i}")
        for i, s in enumerate(sizes)
    ]


def _stream(n, num_inputs=6, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_inputs, size=n).astype(np.int32)


def _expected(machines, inputs):
    """Per-pattern (final_state, match_positions) from the scalar trace."""
    out = []
    for m in machines:
        tr = run_reference_trace(m, inputs)
        fin = int(tr[-1]) if tr.size else int(m.start)
        out.append((fin, np.flatnonzero(m.accepting[tr])))
    return out


def _check_batched(res, machines, inputs):
    assert isinstance(res, MultiPatternResult)
    assert res.num_patterns == len(machines)
    for pr, m, (fin, pos) in zip(res.patterns, machines, _expected(machines, inputs)):
        assert pr.name == m.name
        assert pr.final_state == fin
        assert pr.accepted == bool(m.accepting[fin])
        assert np.array_equal(pr.match_positions, pos)


class TestStack:
    def test_union_block_diagonal_and_closed(self):
        machines = _group([3, 5, 2])
        stack = stack_machines(machines)
        assert isinstance(stack, MachineStack)
        offs = stack.offsets
        table = stack.union_dfa.table
        # Every block stays inside its own state range.
        for p, m in enumerate(machines):
            blk = table[:, offs[p] : offs[p + 1]]
            assert blk.min() >= offs[p] and blk.max() < offs[p + 1]
        # Joint remap preserves each pattern's transitions exactly.
        raw = _stream(500)
        cls = stack.joint.remap(raw)
        for p, m in enumerate(machines):
            s = int(m.start)
            u = int(stack.union_dfa.table[cls[0], offs[p] + s])
            assert u - offs[p] == int(m.table[raw[0], s])

    def test_mismatched_alphabets_rejected(self):
        a = DFA.random(3, 4, rng=0)
        b = DFA.random(3, 5, rng=1)
        with pytest.raises(ValueError):
            stack_machines([a, b])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            stack_machines([])


class TestBatchedRoute:
    @pytest.mark.parametrize("kernel", ["scalar", "lockstep", "stride2", "stride4"])
    @pytest.mark.parametrize("collapse", [None, "auto"])
    def test_bit_exact_all_kernels(self, kernel, collapse):
        machines = _group([3, 5, 2, 7])
        inputs = _stream(4000)
        res = run_multipattern(
            machines, inputs, k=3, num_chunks=16, kernel=kernel,
            collapse=collapse, route="batched",
        )
        assert res.route == "batched"
        _check_batched(res, machines, inputs)

    @pytest.mark.parametrize("schedule", ["barrier", "ooo"])
    def test_bit_exact_schedules(self, schedule):
        machines = _group([4, 6, 3], seed=5)
        inputs = _stream(6000, seed=9)
        res = run_multipattern(
            machines, inputs, k=2, num_chunks=24, schedule=schedule,
            route="batched",
        )
        _check_batched(res, machines, inputs)

    def test_ragged_group_with_one_state_pattern(self):
        # k exceeds some widths; a 1-state pattern gets exactly one lane.
        machines = _group([1, 6, 2], seed=11)
        inputs = _stream(3000, seed=1)
        res = run_multipattern(machines, inputs, k=4, route="batched")
        _check_batched(res, machines, inputs)

    def test_enumerative_k_none(self):
        machines = _group([3, 4], seed=2)
        inputs = _stream(2000, seed=2)
        res = run_multipattern(machines, inputs, k=None, route="batched")
        _check_batched(res, machines, inputs)
        # Full-width speculation over every pattern never misses.
        assert res.stats.reexec_chunks_seq == 0
        assert res.stats.reexec_chunks_eager == 0

    def test_empty_input(self):
        machines = _group([3, 4], seed=4)
        res = run_multipattern(
            machines, np.zeros(0, dtype=np.int32), route="batched"
        )
        for pr, m in zip(res.patterns, machines):
            assert pr.final_state == int(m.start)
            assert pr.match_count == 0

    def test_single_pattern_group(self):
        machines = _group([5], seed=6)
        inputs = _stream(1500, seed=6)
        res = run_multipattern(machines, inputs, k=3, route="batched")
        _check_batched(res, machines, inputs)

    def test_prebuilt_stack_reused(self):
        machines = _group([3, 5], seed=7)
        stack = stack_machines(machines)
        inputs = _stream(1000, seed=7)
        res = run_multipattern(
            machines, inputs, route="batched", stack=stack
        )
        assert res.stack is stack
        _check_batched(res, machines, inputs)

    def test_native_backend_bit_exact(self):
        machines = _group([3, 5, 2, 7], seed=8)
        inputs = _stream(8000, seed=8)
        res = run_multipattern(
            machines, inputs, k=3, num_chunks=8, kernel="lockstep",
            backend="native", route="batched",
        )
        _check_batched(res, machines, inputs)


class TestProductRoute:
    def test_product_matches_batched(self):
        machines = _group([3, 4], num_inputs=4, seed=13)
        inputs = _stream(3000, num_inputs=4, seed=13)
        bat = run_multipattern(machines, inputs, route="batched")
        prod = run_multipattern(machines, inputs, route="product")
        assert prod.route == "product"
        assert prod.product is not None
        for bp, pp in zip(bat.patterns, prod.patterns):
            assert bp.accepted == pp.accepted
            assert np.array_equal(bp.match_positions, pp.match_positions)
            # Product states have no per-component decomposition.
            assert pp.final_state is None

    def test_route_auto_small_group_picks_product(self):
        machines = _group([2, 3], num_inputs=4, seed=14)
        inputs = _stream(1000, num_inputs=4, seed=14)
        res = run_multipattern(machines, inputs, route="auto")
        assert res.route == "product"
        _expected_pos = _expected(machines, inputs)
        for pr, (fin, pos) in zip(res.patterns, _expected_pos):
            assert np.array_equal(pr.match_positions, pos)

    def test_route_auto_large_group_stays_batched(self):
        machines = _group([4] * 8, seed=15)
        inputs = _stream(1000, seed=15)
        res = run_multipattern(
            machines, inputs, route="auto", product_max_patterns=4
        )
        assert res.route == "batched"

    def test_budget_exceeded_falls_back_to_batched(self):
        machines = _group([5, 6, 7], seed=16)
        inputs = _stream(1000, seed=16)
        res = run_multipattern(
            machines, inputs, route="auto", product_budget=4
        )
        assert res.route == "batched"
        _check_batched(res, machines, inputs)


class TestBatchAPI:
    def test_multi_request_bit_exact(self):
        machines = _group([3, 5, 2], seed=20)
        stack = stack_machines(machines)
        rng = np.random.default_rng(20)
        segments = [
            rng.integers(0, 6, size=int(n)).astype(np.int32)
            for n in rng.integers(50, 2000, size=7)
        ]
        finals, accepted = run_multipattern_batch(
            stack, segments, k=3, chunk_items=256
        )
        assert finals.shape == (7, 3) and accepted.shape == (7, 3)
        for i, seg in enumerate(segments):
            for p, m in enumerate(machines):
                fin = run_segment(m, seg, m.start)
                assert finals[i, p] == fin
                assert accepted[i, p] == bool(m.accepting[fin])

    def test_starts_carry_across_rounds(self):
        # Two half-rounds with carried starts == one full-length round.
        machines = _group([4, 3], seed=21)
        stack = stack_machines(machines)
        rng = np.random.default_rng(21)
        full = [
            rng.integers(0, 6, size=1200).astype(np.int32) for _ in range(3)
        ]
        f_full, a_full = run_multipattern_batch(stack, full, k=2)
        f1, _ = run_multipattern_batch(stack, [s[:600] for s in full], k=2)
        f2, a2 = run_multipattern_batch(
            stack, [s[600:] for s in full], k=2, starts=f1
        )
        assert np.array_equal(f2, f_full)
        assert np.array_equal(a2, a_full)

    def test_bad_starts_rejected(self):
        machines = _group([3, 3], seed=22)
        stack = stack_machines(machines)
        seg = [_stream(100, seed=22)]
        with pytest.raises(ValueError):
            run_multipattern_batch(
                stack, seg, starts=np.zeros((2, 2), dtype=np.int32)
            )
        bad = np.array([[0, 3]], dtype=np.int32)  # state 3 out of range
        with pytest.raises(ValueError):
            run_multipattern_batch(stack, seg, starts=bad)


class TestEngineDelegation:
    def test_list_of_machines_routes_to_multipattern(self):
        machines = _group([3, 5], seed=30)
        inputs = _stream(2000, seed=30)
        res = repro.run_speculative(
            machines, inputs, k=3, collect=("match_positions",)
        )
        assert isinstance(res, MultiPatternResult)
        if res.route == "batched":
            _check_batched(res, machines, inputs)
        for pr, (fin, pos) in zip(res.patterns, _expected(machines, inputs)):
            assert np.array_equal(pr.match_positions, pos)

    def test_unsupported_backend_rejected(self):
        machines = _group([3, 4], seed=31)
        with pytest.raises(ValueError):
            repro.run_speculative(
                machines, _stream(100, seed=31), backend="numba"
            )


class TestGroupPool:
    def test_for_group_bit_exact(self):
        machines = _group([3, 5, 2, 4], seed=40)
        inputs = _stream(60_000, seed=40)
        with ScaleoutPool.for_group(machines, num_workers=3, k=3) as pool:
            res = pool.run_multi(inputs, collect_matches=True)
            assert res.route == "pool"
            _check_batched(res, machines, inputs)
            # Warm pool: second call reuses published tables.
            res2 = pool.run_multi(inputs)
            for pr, (fin, _) in zip(
                res2.patterns, _expected(machines, inputs)
            ):
                assert pr.final_state == fin

    def test_single_worker_runs_local(self):
        machines = _group([3, 4], seed=41)
        inputs = _stream(5000, seed=41)
        with ScaleoutPool.for_group(machines, num_workers=1, k=3) as pool:
            res = pool.run_multi(inputs, collect_matches=True)
            assert res.route == "batched"  # local fallback path
            _check_batched(res, machines, inputs)

    def test_empty_input(self):
        machines = _group([3, 4], seed=42)
        with ScaleoutPool.for_group(machines, num_workers=2) as pool:
            res = pool.run_multi(np.zeros(0, dtype=np.int32))
            for pr, m in zip(res.patterns, machines):
                assert pr.final_state == int(m.start)

    def test_plain_pool_has_no_multi(self):
        dfa = DFA.random(4, 6, rng=43)
        with ScaleoutPool(dfa, num_workers=1) as pool:
            with pytest.raises(ValueError):
                pool.run_multi(_stream(100, seed=43))
