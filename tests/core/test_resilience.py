"""Tests for worker supervision: deadlines, retry, respawn, degrade.

Every scenario drives a real :class:`ScaleoutPool` through the
deterministic fault harness and asserts the recovered result equals the
fault-free reference — recovery must never change the answer, only the
path taken to it.
"""

import glob
import random

import numpy as np
import pytest

from repro.core import faultinject as fi
from repro.core.mp_executor import ScaleoutPool
from repro.core.resilience import (
    DEFAULT_RESILIENCE,
    DeadlineModel,
    PoolClosedError,
    ResilienceConfig,
    RetryPolicy,
    SupervisionReport,
)
from repro.fsm.run import run_reference
from repro.obs.trace import RunTrace
from tests.conftest import make_random_dfa, random_input


def shm_segments() -> set:
    """Names of POSIX shared-memory segments currently in /dev/shm."""
    return set(glob.glob("/dev/shm/psm_*"))


class TestPolicies:
    def test_retry_backoff_grows_exponentially(self):
        policy = RetryPolicy(max_retries=3, backoff_base_s=0.1,
                             backoff_factor=2.0, backoff_jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay_s(a, rng) for a in (1, 2, 3)]
        assert delays == [pytest.approx(0.1), pytest.approx(0.2),
                          pytest.approx(0.4)]

    def test_retry_jitter_stretches_within_bound(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_jitter=0.5)
        rng = random.Random(0)
        for attempt in range(1, 5):
            base = 0.1 * 2.0 ** (attempt - 1)
            d = policy.delay_s(attempt, rng)
            assert base <= d <= base * 1.5

    def test_deadline_floor_dominates_small_tasks(self):
        model = DeadlineModel(floor_s=5.0, bytes_per_sec_floor=1e6,
                              safety_factor=8.0)
        assert model.deadline_s(1_000) == 5.0

    def test_deadline_scales_with_bytes_and_throughput(self):
        model = DeadlineModel(floor_s=0.0, bytes_per_sec_floor=1e6,
                              safety_factor=2.0)
        assert model.deadline_s(10_000_000) == pytest.approx(20.0)
        # Faster measured throughput shortens the deadline...
        assert model.deadline_s(10_000_000, bytes_per_sec=1e7) == pytest.approx(2.0)
        # ...but the floor throughput caps how optimistic it can get.
        assert model.deadline_s(10_000_000, bytes_per_sec=1e3) == pytest.approx(20.0)

    def test_config_defaults_are_safe(self):
        cfg = DEFAULT_RESILIENCE
        assert cfg.retry.max_retries >= 1
        assert cfg.quorum_fraction <= 0.5
        assert cfg.max_respawns is None  # derived as 2 * num_workers

    def test_report_total_actions(self):
        report = SupervisionReport()
        report.worker_deaths = 1
        report.respawns = 1
        report.retries = 2
        assert report.total_recovery_actions == 4


class TestKillRecovery:
    @pytest.mark.parametrize("victim", [0, 1, 2, 3])
    def test_any_single_worker_kill_recovers_exactly(self, victim):
        """The acceptance criterion: kill any worker, same final state."""
        dfa = make_random_dfa(10, 4, seed=victim)
        inp = random_input(4, 16_000, seed=victim + 10)
        ref = run_reference(dfa, inp)
        plan = fi.FaultPlan([fi.kill_worker(victim, at_task=0)])
        with ScaleoutPool(dfa, num_workers=4, k=4, sub_chunks_per_worker=8,
                          fault_plan=plan) as pool:
            res = pool.run(inp)
        assert res.final_state == ref
        assert res.degraded is False
        assert res.recovery is not None
        assert res.recovery.worker_deaths == 1
        assert res.recovery.respawns == 1
        assert res.recovery.retries >= 1
        kinds = [e.kind for e in res.recovery.events]
        assert "worker_death" in kinds and "retry" in kinds

    def test_recovery_counters_reach_the_trace(self):
        dfa = make_random_dfa(8, 3, seed=1)
        inp = random_input(3, 12_000, seed=2)
        plan = fi.FaultPlan([fi.kill_worker(1, at_task=0)])
        trace = RunTrace("kill-recovery")
        with trace.activate():
            with ScaleoutPool(dfa, num_workers=3, k=3,
                              sub_chunks_per_worker=8, fault_plan=plan) as pool:
                res = pool.run(inp)
        assert res.final_state == run_reference(dfa, inp)
        fault = trace.counters_with_prefix("fault.")
        assert fault["fault.worker_deaths"] == 1
        assert fault["fault.respawns"] == 1
        assert fault["fault.injected"] == 1
        assert fault["fault.retries"] >= 1
        assert len(trace.find("fault.respawn")) == 1

    def test_pool_survives_kill_for_subsequent_runs(self):
        dfa = make_random_dfa(8, 3, seed=3)
        inp = random_input(3, 12_000, seed=4)
        ref = run_reference(dfa, inp)
        plan = fi.FaultPlan([fi.kill_worker(0, at_task=0)])
        with ScaleoutPool(dfa, num_workers=2, k=3, sub_chunks_per_worker=8,
                          fault_plan=plan) as pool:
            assert pool.run(inp).final_state == ref
            for _ in range(3):  # the respawned worker keeps serving
                clean = pool.run(inp)
                assert clean.final_state == ref
                assert clean.recovery is None


class TestCorruptAndUnlink:
    def test_corrupt_result_detected_and_retried(self):
        dfa = make_random_dfa(8, 3, seed=5)
        inp = random_input(3, 12_000, seed=6)
        plan = fi.FaultPlan([fi.corrupt_result_map(1, at_task=0)])
        with ScaleoutPool(dfa, num_workers=3, k=3, sub_chunks_per_worker=8,
                          fault_plan=plan) as pool:
            res = pool.run(inp)
        assert res.final_state == run_reference(dfa, inp)
        assert res.degraded is False
        assert res.recovery.corrupt_results == 1
        assert res.recovery.retries == 1
        assert res.recovery.worker_deaths == 0  # the worker itself is healthy

    def test_shm_unlink_race_republishes_input(self):
        dfa = make_random_dfa(8, 3, seed=7)
        inp = random_input(3, 12_000, seed=8)
        plan = fi.FaultPlan([fi.shm_unlink_race(at_call=1)])
        with ScaleoutPool(dfa, num_workers=3, k=3, sub_chunks_per_worker=8,
                          fault_plan=plan) as pool:
            res = pool.run(inp)
            again = pool.run(inp)  # the republished segment persists
        assert res.final_state == run_reference(dfa, inp)
        assert res.degraded is False
        assert res.recovery.shm_republishes == 1
        assert res.recovery.worker_errors >= 1
        assert again.final_state == res.final_state
        assert again.recovery is None


class TestDeadlines:
    def test_straggler_is_hedged_not_killed(self):
        """A delayed worker trips its deadline; the task is re-dispatched
        to a sibling while the straggler survives (first strike only)."""
        dfa = make_random_dfa(8, 3, seed=9)
        inp = random_input(3, 12_000, seed=10)
        plan = fi.FaultPlan([fi.delay_task(0, at_task=0, seconds=1.2)])
        cfg = ResilienceConfig(
            deadline=DeadlineModel(floor_s=0.2, safety_factor=1.0),
            max_deadline_strikes=2,
        )
        with ScaleoutPool(dfa, num_workers=3, k=3, sub_chunks_per_worker=8,
                          fault_plan=plan, resilience=cfg) as pool:
            res = pool.run(inp)
        assert res.final_state == run_reference(dfa, inp)
        assert res.degraded is False
        assert res.recovery.deadline_expirations >= 1
        assert res.recovery.retries >= 1


class TestDegradation:
    def test_quorum_loss_degrades_to_local_with_exact_result(self):
        dfa = make_random_dfa(10, 4, seed=11)
        inp = random_input(4, 16_000, seed=12)
        plan = fi.FaultPlan([fi.kill_worker(0, at_task=0)])
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_retries=0),
            max_respawns=0,
            quorum_fraction=1.0,
        )
        trace = RunTrace("degrade")
        with trace.activate():
            with ScaleoutPool(dfa, num_workers=2, k=4, sub_chunks_per_worker=8,
                              fault_plan=plan, resilience=cfg) as pool:
                res = pool.run(inp)
        assert res.final_state == run_reference(dfa, inp)  # never wrong
        assert res.degraded is True
        assert res.recovery.degraded is True
        assert "quorum" in res.recovery.degrade_reason
        assert trace.counters_with_prefix("fault.")["fault.degraded_runs"] == 1
        assert len(trace.find("fault.degrade")) == 1
        # The degraded timing still tiles the wall clock.
        assert res.timing.stages_s == pytest.approx(res.timing.total_s, rel=1e-6)

    def test_retry_exhaustion_degrades(self):
        dfa = make_random_dfa(8, 3, seed=13)
        inp = random_input(3, 12_000, seed=14)
        # Corrupt every early task on both workers: retries cannot win.
        plan = fi.FaultPlan(
            [fi.corrupt_result_map(w, at_task=t)
             for w in range(2) for t in range(4)]
        )
        cfg = ResilienceConfig(retry=RetryPolicy(max_retries=1,
                                                 backoff_base_s=0.01))
        with ScaleoutPool(dfa, num_workers=2, k=3, sub_chunks_per_worker=8,
                          fault_plan=plan, resilience=cfg) as pool:
            res = pool.run(inp)
        assert res.final_state == run_reference(dfa, inp)
        assert res.degraded is True
        assert "retries" in res.recovery.degrade_reason

    def test_degraded_pool_recovers_on_next_run(self):
        """Degradation is per-run: the next call gets a healed pool."""
        dfa = make_random_dfa(8, 3, seed=15)
        inp = random_input(3, 12_000, seed=16)
        ref = run_reference(dfa, inp)
        plan = fi.FaultPlan([fi.kill_worker(0, at_task=0)])
        cfg = ResilienceConfig(retry=RetryPolicy(max_retries=0),
                               max_respawns=0, quorum_fraction=1.0)
        with ScaleoutPool(dfa, num_workers=2, k=3, sub_chunks_per_worker=8,
                          fault_plan=plan, resilience=cfg) as pool:
            first = pool.run(inp)
            second = pool.run(inp)
        assert first.degraded is True
        assert second.degraded is False
        assert second.final_state == ref


class TestLifecycleAndLeaks:
    def test_closed_pool_raises_pool_closed_error(self):
        dfa = make_random_dfa(4, 2, seed=17)
        pool = ScaleoutPool(dfa, num_workers=2)
        pool.close()
        with pytest.raises(PoolClosedError):
            pool.run(random_input(2, 100, seed=0))

    def test_no_segments_leak_after_fault_recovery(self):
        before = shm_segments()
        dfa = make_random_dfa(8, 3, seed=18)
        inp = random_input(3, 12_000, seed=19)
        plan = fi.FaultPlan([fi.kill_worker(1, at_task=0),
                             fi.shm_unlink_race(at_call=2)])
        with ScaleoutPool(dfa, num_workers=3, k=3, sub_chunks_per_worker=8,
                          fault_plan=plan) as pool:
            pool.run(inp)
            pool.run(inp)
        assert shm_segments() <= before

    def test_failed_init_leaks_nothing(self, monkeypatch):
        """Segments published before a failing constructor step are freed."""
        import repro.core.mp_executor as mp_mod

        before = shm_segments()

        def boom(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(mp_mod, "SupervisedWorkerPool", boom)
        dfa = make_random_dfa(6, 2, seed=20)
        with pytest.raises(OSError):
            ScaleoutPool(dfa, num_workers=2)
        assert shm_segments() <= before

    def test_del_after_failed_init_is_silent(self):
        """__del__ on a half-built pool must not raise (bad args path)."""
        dfa = make_random_dfa(4, 2, seed=21)
        with pytest.raises(ValueError):
            ScaleoutPool(dfa, num_workers=0)
        # Constructor raised before registration; nothing to clean, and
        # any later GC of the partial object must stay silent.

    def test_streaming_degraded_feed_commits_and_counts(self):
        from repro.core.streaming import StreamingExecutor

        dfa = make_random_dfa(8, 3, seed=22)
        stream = random_input(3, 16_000, seed=23)
        ref = run_reference(dfa, stream)
        plan = fi.FaultPlan([fi.kill_worker(0, at_task=0)])
        cfg = ResilienceConfig(retry=RetryPolicy(max_retries=0),
                               max_respawns=0, quorum_fraction=1.0)
        with StreamingExecutor(dfa, k=3, backend="pool", pool_workers=2,
                               sub_chunks_per_worker=8, resilience=cfg,
                               fault_plan=plan) as ex:
            blocks = np.array_split(stream, 4)
            ex.feed(blocks[0])
            assert ex.last_feed_degraded is True
            assert ex.degraded_feeds == 1
            for block in blocks[1:]:
                ex.feed(block)
            assert ex.degraded_feeds == 1  # later feeds ran scaled out
            assert ex.state == ref
