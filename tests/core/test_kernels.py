"""Property tests for the multi-symbol stepping kernel layer.

Every registered kernel must produce bit-identical results to the
sequential reference (:func:`repro.fsm.run.run_reference`) on randomized
machines, strides, chunk plans, and ragged tail lengths — including chunks
shorter than the stride and empty chunks.
"""

import numpy as np
import pytest

from repro.core.autotune import choose_kernel
from repro.core.engine import run_speculative
from repro.core.kernels import (
    DEFAULT_TABLE_BUDGET_BYTES,
    KERNELS,
    build_stride_tables,
    plan_kernel,
    process_chunks_kernel,
    run_segment_kernel,
    select_kernel,
    stride_table_bytes,
)
from repro.core.local import process_chunks
from repro.core.mp_executor import ScaleoutPool
from repro.core.prefix_scan import run_prefix_scan
from repro.core.types import ExecStats
from repro.fsm.alphabet import compact_alphabet
from repro.fsm.dfa import DFA
from repro.fsm.run import run_reference, run_segment
from repro.workloads.chunking import plan_chunks, transform_layout
from tests.conftest import make_random_dfa, random_input


def redundant_dfa(num_states, num_rows, num_symbols, seed):
    """A DFA whose symbol axis collapses: ``num_rows`` distinct rows spread
    over ``num_symbols`` symbols (the shape compaction exists for)."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, num_states, size=(num_rows, num_states)).astype(np.int32)
    table = base[rng.integers(0, num_rows, size=num_symbols)]
    return DFA(
        table=table, start=0, accepting=rng.random(num_states) < 0.3
    )


class TestCompaction:
    def test_round_trip(self):
        dfa = redundant_dfa(9, 4, 17, seed=0)
        comp = compact_alphabet(dfa.table)
        assert comp.num_classes <= 4
        np.testing.assert_array_equal(comp.table[comp.class_of], dfa.table)

    def test_first_appearance_order_is_stable(self):
        dfa = redundant_dfa(6, 3, 12, seed=1)
        a = compact_alphabet(dfa.table)
        b = compact_alphabet(dfa.table.copy())
        np.testing.assert_array_equal(a.class_of, b.class_of)
        np.testing.assert_array_equal(a.table, b.table)
        # Class 0 is symbol 0's row by construction.
        assert a.class_of[0] == 0

    def test_all_distinct_rows(self):
        dfa = make_random_dfa(5, 4, seed=2)
        comp = compact_alphabet(dfa.table)
        # Random 4x5 tables essentially never repeat rows; either way the
        # reconstruction identity must hold.
        np.testing.assert_array_equal(comp.table[comp.class_of], dfa.table)
        assert 1 <= comp.num_classes <= 4

    def test_compression_property(self):
        comp = compact_alphabet(redundant_dfa(8, 2, 64, seed=3).table)
        assert comp.compression == 64 / comp.num_classes


class TestStrideTables:
    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    def test_power_table_matches_composition(self, m):
        dfa = redundant_dfa(7, 5, 5, seed=m)
        comp = compact_alphabet(dfa.table)
        st = build_stride_tables(comp.table, m)
        assert st.table_m.shape == (comp.num_classes ** m, 7)
        rng = np.random.default_rng(m)
        for _ in range(25):
            classes = rng.integers(0, comp.num_classes, size=m)
            q = int(rng.integers(0, 7))
            idx = 0
            state = q
            for c in classes:
                idx = idx * comp.num_classes + int(c)
                state = int(comp.table[c, state])
            assert st.table_m[idx, q] == state

    def test_table_bytes_formula(self):
        assert stride_table_bytes(5, 7, 2) == 25 * 7 * 4
        st = build_stride_tables(np.zeros((3, 4), np.int32), 3)
        assert st.nbytes == stride_table_bytes(3, 4, 3)


# The randomized cross-check grid: every kernel x plans with ragged tails,
# chunks shorter than the stride, and more chunks than items (empty chunks).
CASES = [
    # (num_items, num_chunks, k)
    (211, 8, 3),
    (97, 5, 1),
    (7, 10, 2),  # L < m for stride4, plus empty chunks
    (3, 4, 2),  # chunk lengths in {0, 1}
    (0, 3, 2),  # empty input
    (1024, 16, 4),  # exact multiples, no ragged tail
    (1025, 16, 4),  # one ragged chunk
]


@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("n,chunks,k", CASES)
def test_kernel_matches_reference(kernel, n, chunks, k):
    dfa = redundant_dfa(11, 4, 13, seed=n * 31 + chunks)
    inp = random_input(13, n, seed=n + k)
    plan = plan_chunks(n, chunks)
    rng = np.random.default_rng(chunks)
    spec = rng.integers(0, 11, size=(chunks, k)).astype(np.int32)
    kplan = plan_kernel(
        dfa, chunk_len=plan.max_len, num_chunks=chunks, k=k, kernel=kernel
    )
    end = process_chunks_kernel(dfa, inp, plan, spec, kplan)
    expect = np.empty_like(spec)
    for c in range(chunks):
        seg = inp[plan.chunk_slice(c)]
        for j in range(k):
            expect[c, j] = run_segment(dfa, seg, int(spec[c, j]))
    np.testing.assert_array_equal(end, expect, err_msg=f"{kernel} {n}/{chunks}/{k}")


@pytest.mark.parametrize("kernel", ["stride2", "stride4"])
def test_kernel_transformed_layout_equals_natural(kernel):
    dfa = redundant_dfa(9, 5, 21, seed=7)
    inp = random_input(21, 537, seed=8)
    plan = plan_chunks(537, 12)
    spec = np.random.default_rng(9).integers(0, 9, size=(12, 3)).astype(np.int32)
    kplan = plan_kernel(dfa, chunk_len=plan.max_len, num_chunks=12, k=3, kernel=kernel)
    nat = process_chunks_kernel(dfa, inp, plan, spec, kplan)
    tra = process_chunks_kernel(
        dfa, inp, plan, spec, kplan, transformed=transform_layout(inp, plan)
    )
    np.testing.assert_array_equal(nat, tra)


def test_kernel_stats_match_lockstep_semantics():
    """Stride kernels fill the same algorithmic counters as lockstep."""
    dfa = redundant_dfa(9, 4, 16, seed=11)
    inp = random_input(16, 333, seed=12)
    plan = plan_chunks(333, 8)
    spec = np.zeros((8, 2), dtype=np.int32)
    s_lock, s_stride = ExecStats(), ExecStats()
    process_chunks(dfa, inp, plan, spec, stats=s_lock)
    kplan = plan_kernel(dfa, chunk_len=plan.max_len, num_chunks=8, k=2, kernel="stride4")
    process_chunks_kernel(dfa, inp, plan, spec, kplan, stats=s_stride)
    assert s_stride.local_steps == s_lock.local_steps
    assert s_stride.local_transitions == s_lock.local_transitions
    assert s_stride.local_input_reads == s_lock.local_input_reads


@pytest.mark.parametrize("length", [0, 1, 3, 4, 5, 63, 256])
@pytest.mark.parametrize("kernel", ["scalar", "stride2", "stride4"])
def test_run_segment_kernel_matches_reference(kernel, length):
    dfa = redundant_dfa(8, 3, 10, seed=length)
    inp = random_input(10, length, seed=length + 1)
    kplan = plan_kernel(dfa, chunk_len=length, num_chunks=1, k=1, kernel=kernel)
    for start in range(dfa.num_states):
        assert run_segment_kernel(kplan, inp, start) == run_reference(
            dfa, inp, start
        )


class TestSelection:
    def test_budget_excludes_oversized_tables(self):
        # 20 classes, 64 states: stride4 needs 20^4 * 64 * 4 = 41 MB.
        assert stride_table_bytes(20, 64, 4) > DEFAULT_TABLE_BUDGET_BYTES
        name = select_kernel(20, 64, 4096, 4096, 4)
        assert name in ("lockstep", "stride2")

    def test_long_chunks_prefer_stride(self):
        assert select_kernel(4, 16, 1 << 14, 4096, 4) == "stride4"

    def test_explicit_oversized_kernel_raises(self):
        dfa = make_random_dfa(64, 20, seed=1)
        with pytest.raises(ValueError, match="budget"):
            plan_kernel(
                dfa, chunk_len=100, num_chunks=8, k=2, kernel="stride4",
                table_budget_bytes=1 << 10,
            )

    def test_auto_plan_respects_budget(self):
        dfa = make_random_dfa(64, 20, seed=1)
        kplan = plan_kernel(
            dfa, chunk_len=1 << 14, num_chunks=4096, k=4,
            table_budget_bytes=1 << 12,
        )
        assert kplan.table_bytes <= (1 << 12) + dfa.num_states * 20 * 4

    def test_choose_kernel_measures_and_picks_argmin(self):
        dfa = redundant_dfa(12, 4, 24, seed=5)
        inp = random_input(24, 40_000, seed=6)
        choice = choose_kernel(dfa, inp, num_chunks=256, k=2, probe_items=1 << 14)
        assert choice.kernel in choice.measured_s
        assert choice.measured_s[choice.kernel] == min(choice.measured_s.values())
        assert choice.probe_items == 1 << 14
        assert set(choice.build_s) <= {"stride2", "stride4", "scalar"}


class TestEngineIntegration:
    @pytest.mark.parametrize("kernel", ["auto", "stride2", "stride4", "scalar"])
    def test_final_state_matches_reference(self, kernel):
        dfa = redundant_dfa(10, 5, 14, seed=3)
        inp = random_input(14, 9_000, seed=4)
        ref = run_reference(dfa, inp)
        res = run_speculative(
            dfa, inp, k=3, num_blocks=2, threads_per_block=32,
            kernel=kernel, price=False,
        )
        assert res.final_state == ref
        assert res.config.kernel in KERNELS

    def test_match_positions_kernel_independent(self):
        dfa = redundant_dfa(10, 4, 12, seed=13)
        inp = random_input(12, 5_000, seed=14)
        base = run_speculative(
            dfa, inp, k=2, num_blocks=1, threads_per_block=64,
            collect=("match_positions",), price=False,
        )
        strided = run_speculative(
            dfa, inp, k=2, num_blocks=1, threads_per_block=64,
            collect=("match_positions",), kernel="stride4", price=False,
        )
        np.testing.assert_array_equal(base.match_positions, strided.match_positions)

    def test_stride_rejects_per_symbol_features(self):
        dfa = redundant_dfa(10, 4, 12, seed=15)
        inp = random_input(12, 1_000, seed=16)
        with pytest.raises(ValueError, match="per-symbol"):
            run_speculative(
                dfa, inp, k=2, num_blocks=1, threads_per_block=32,
                kernel="stride2", cache_table=True, price=False,
            )
        # "auto" quietly falls back to lockstep instead.
        res = run_speculative(
            dfa, inp, k=2, num_blocks=1, threads_per_block=32,
            kernel="auto", cache_table=True, price=False,
        )
        assert res.config.kernel == "lockstep"

    def test_prefix_scan_kernel_equivalence(self):
        dfa = redundant_dfa(9, 4, 18, seed=17)
        inp = random_input(18, 7_777, seed=18)
        auto = run_prefix_scan(dfa, inp, num_chunks=32)
        lock = run_prefix_scan(dfa, inp, num_chunks=32, kernel="lockstep")
        assert auto.final_state == lock.final_state == run_reference(dfa, inp)
        np.testing.assert_array_equal(auto.total_function, lock.total_function)


class TestPoolIntegration:
    @pytest.mark.parametrize("kernel", ["auto", "stride2"])
    @pytest.mark.parametrize("k", [None, 2])
    def test_pool_kernel_exactness(self, kernel, k):
        dfa = redundant_dfa(9, 4, 16, seed=19)
        inp = random_input(16, 20_000, seed=20)
        ref = run_reference(dfa, inp)
        with ScaleoutPool(
            dfa, num_workers=2, k=k, sub_chunks_per_worker=6, kernel=kernel
        ) as pool:
            assert pool.run(inp).final_state == ref
            # stride tables are published once: shm footprint includes them
            if pool.kernel.startswith("stride"):
                assert pool._stride_shm is not None

    def test_pool_single_worker_routes_through_kernel(self):
        dfa = redundant_dfa(9, 4, 16, seed=21)
        inp = random_input(16, 3_000, seed=22)
        with ScaleoutPool(dfa, num_workers=1, kernel="stride4") as pool:
            assert pool.run(inp).final_state == run_reference(dfa, inp)
