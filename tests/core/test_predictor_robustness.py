"""Corrupt-store robustness of the history predictor (ISSUE 9 satellite).

A torn, foreign, or partially-rotten JSON store must never take the
engine down: the predictor falls back to an empty history (sample-prior
speculation) and the corruption is visible as the
``predictor.load_corrupt`` counter on the ambient trace.
"""

from __future__ import annotations

import json

import pytest

from repro.core.predictor import HistoryPredictor, dfa_fingerprint
from repro.obs.trace import RunTrace

from tests.conftest import make_random_dfa, random_input


def load_counting(path):
    """Load a predictor under a trace; return (predictor, counters)."""
    with RunTrace(run_id="pred").activate() as tr:
        pred = HistoryPredictor(path)
    counts = {c.name: c.value for c in tr.counters.values()}
    return pred, counts


@pytest.mark.parametrize(
    "payload",
    [
        b"{ this is not json",
        b"\x00\x01\x02\xff binary garbage",
        b"[1, 2, 3]",  # valid JSON, wrong shape
        b'{"version": 999, "machines": {}}',  # future format
        b'{"version": 1, "machines": "not-a-dict"}',
        b"",
    ],
)
def test_corrupt_store_falls_back_empty_and_counts(tmp_path, payload):
    path = tmp_path / "history.json"
    path.write_bytes(payload)
    pred, counts = load_counting(path)
    dfa = make_random_dfa(12, 4, seed=2)
    assert pred.prior(dfa) is None  # empty history, sample prior wins
    assert counts.get("predictor.load_corrupt", 0) == 1


def test_partially_corrupt_store_keeps_sound_entries(tmp_path):
    dfa = make_random_dfa(12, 4, seed=2)
    path = tmp_path / "history.json"
    good = HistoryPredictor(path)
    good.observe(dfa, random_input(4, 500, seed=3)[:0])  # may be empty run
    good.observe(dfa, random_input(4, 2_000, seed=3))
    assert good.prior(dfa) is not None

    raw = json.loads(path.read_text())
    raw["machines"]["deadbeef"] = {"counts": "rotten"}
    raw["machines"]["cafebabe"] = {"counts": [1, "x", 3]}
    path.write_text(json.dumps(raw))

    pred, counts = load_counting(path)
    assert counts.get("predictor.load_corrupt", 0) == 1
    assert pred.prior(dfa) is not None  # the sound entry survived
    assert dfa_fingerprint(dfa) in pred._store
    assert "deadbeef" not in pred._store and "cafebabe" not in pred._store


def test_clean_store_counts_nothing(tmp_path):
    dfa = make_random_dfa(12, 4, seed=2)
    path = tmp_path / "history.json"
    good = HistoryPredictor(path)
    good.observe(dfa, random_input(4, 2_000, seed=3))
    pred, counts = load_counting(path)
    assert "predictor.load_corrupt" not in counts
    assert pred.prior(dfa) is not None
