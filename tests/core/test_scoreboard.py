"""Tests for out-of-order chunk resolution (the scoreboard) and the
history-based start-state predictor.

The central properties:

* the scoreboard path (``schedule="ooo"``) is bit-exact with both the
  sequential reference and the barrier engine across every app, kernel,
  merge mode and collapse setting;
* misses re-execute *early* — while other chunks are still unposted —
  which the ``sched.reexec_early`` counter and the scoreboard's
  :attr:`reexec_log` prove;
* the scale-out pool streams chunk maps into a parent-side scoreboard and
  recovers exactly through faults (kill, corrupt) under ``schedule="ooo"``.
"""

import numpy as np
import pytest

from repro.apps import APPLICATIONS
from repro.core import faultinject as fi
from repro.core.engine import run_speculative
from repro.core.lookback import speculate
from repro.core.mp_executor import ScaleoutPool
from repro.core.predictor import HistoryPredictor, dfa_fingerprint
from repro.core.scoreboard import (
    STAGE_MERGED,
    STAGE_RETIRED,
    ChunkScoreboard,
    run_chunks_active,
)
from repro.core.types import ExecStats
from repro.fsm.run import run_reference
from repro.obs.trace import RunTrace
from repro.workloads.chunking import plan_chunks, plan_from_lengths
from tests.conftest import make_random_dfa, random_input


def post_all(board, dfa, inputs, plan, spec, order):
    """Execute every chunk sequentially and post in the given order."""
    for c in order:
        c = int(c)
        lo, hi = int(plan.starts[c]), int(plan.starts[c] + plan.lengths[c])
        end = np.array(
            [run_segment(dfa, inputs[lo:hi], int(s)) for s in spec[c]],
            dtype=spec.dtype,
        )
        board.post(c, spec[c], end)


def run_segment(dfa, seg, s):
    for sym in seg:
        s = int(dfa.table[int(sym), s])
    return s


class TestScoreboardUnit:
    def _case(self, seed=0, n=900, chunks=12, k=2):
        dfa = make_random_dfa(7, 3, seed=seed)
        inp = random_input(3, n, seed=seed + 1)
        plan = plan_chunks(n, chunks)
        spec = speculate(dfa, inp, plan, k, lookback=4)
        return dfa, inp, plan, spec

    @pytest.mark.parametrize("mode", ["sequential", "parallel"])
    def test_resolve_any_post_order(self, mode):
        dfa, inp, plan, spec = self._case()
        ref = run_reference(dfa, inp)
        rng = np.random.default_rng(42)
        for _ in range(5):
            order = rng.permutation(plan.num_chunks)
            board = ChunkScoreboard(dfa, inp, plan, spec.shape[1], mode=mode)
            post_all(board, dfa, inp, plan, spec, order)
            final, true_starts = board.resolve()
            assert final == ref
            assert np.all(board.stage >= STAGE_MERGED)
            if mode == "sequential":
                # Full per-chunk truth is recovered in sequential mode.
                assert true_starts is not None

    def test_resolve_with_unposted_chunk_raises(self):
        dfa, inp, plan, spec = self._case()
        board = ChunkScoreboard(dfa, inp, plan, spec.shape[1])
        post_all(board, dfa, inp, plan, spec, range(plan.num_chunks - 1))
        with pytest.raises(RuntimeError):
            board.resolve()

    def test_converged_chunks_retire_immediately(self):
        # An absorbing machine: every chunk's map is constant, so every
        # posted chunk should retire the moment it is posted.
        from repro.fsm.dfa import DFA

        table = np.zeros((2, 5), dtype=np.int32)  # everything goes to state 0
        dfa = DFA(table, 1, np.zeros(5, dtype=bool))
        n, chunks = 600, 8
        inp = random_input(2, n, seed=4)
        plan = plan_chunks(n, chunks)
        spec = speculate(dfa, inp, plan, 2, lookback=4)
        board = ChunkScoreboard(dfa, inp, plan, 2)
        for c in range(chunks - 1, -1, -1):  # worst-case order: right to left
            lo, hi = int(plan.starts[c]), int(plan.starts[c] + plan.lengths[c])
            end = np.array(
                [run_segment(dfa, inp[lo:hi], int(s)) for s in spec[c]],
                dtype=spec.dtype,
            )
            board.post(c, spec[c], end, converged=True)
            assert board.stage[c] == STAGE_RETIRED
        final, _ = board.resolve()
        assert final == run_reference(dfa, inp)

    def test_reissue_before_post_counts_and_rewinds(self):
        dfa, inp, plan, spec = self._case()
        board = ChunkScoreboard(dfa, inp, plan, spec.shape[1])
        board.reissue(3)
        post_all(board, dfa, inp, plan, spec, range(plan.num_chunks))
        final, _ = board.resolve()
        assert final == run_reference(dfa, inp)

    def test_reissue_after_post_raises(self):
        dfa, inp, plan, spec = self._case()
        board = ChunkScoreboard(dfa, inp, plan, spec.shape[1])
        post_all(board, dfa, inp, plan, spec, [0])
        with pytest.raises(Exception):
            board.reissue(0)

    def test_stats_counted(self):
        dfa, inp, plan, spec = self._case()
        stats = ExecStats()
        board = ChunkScoreboard(dfa, inp, plan, spec.shape[1], stats=stats)
        post_all(board, dfa, inp, plan, spec, range(plan.num_chunks))
        board.resolve()
        # Resolution accounts its work: front probes run the runtime check,
        # and misses land in the early re-execution counters.
        assert stats.check_comparisons + stats.hash_probes > 0
        assert stats.reexec_chunks_early == len(board.reexec_log)


class TestEarlyReexecution:
    def test_misses_reexecute_before_all_chunks_posted(self):
        """The tentpole ordering property: a provable miss launches its
        re-execution while other chunks are still in flight."""
        # k=1 with no lookback guesses the DFA start for every chunk, which
        # is almost always a miss on a random machine.
        dfa = make_random_dfa(9, 3, seed=11)
        n, chunks = 4000, 16
        inp = random_input(3, n, seed=12)
        plan = plan_chunks(n, chunks)
        spec = np.full((chunks, 1), dfa.start, dtype=np.int32)
        spec[:, 0] = dfa.start
        board = ChunkScoreboard(dfa, inp, plan, 1)
        post_all(board, dfa, inp, plan, spec, range(chunks))
        final, _ = board.resolve()
        assert final == run_reference(dfa, inp)
        assert board.reexec_log, "expected speculation misses"
        # Every logged re-execution happened before the last post:
        # posts_seen strictly less than the chunk count proves the miss was
        # handled eagerly, not after a full barrier.
        early = [e for e in board.reexec_log if e[2] < chunks]
        assert early, f"no early re-execution in {board.reexec_log}"

    def test_sched_counters_reach_the_trace(self):
        dfa = make_random_dfa(9, 3, seed=13)
        inp = random_input(3, 6000, seed=14)
        trace = RunTrace("sched")
        with trace.activate():
            res = run_speculative(
                dfa, inp, k=1, num_blocks=1, threads_per_block=32,
                lookback=0, schedule="ooo",
            )
        assert res.final_state == run_reference(dfa, inp)
        sched = trace.counters_with_prefix("sched.")
        assert sched.get("sched.posted", 0) == 32
        # k=1/lookback=0 speculation misses on a 9-state random machine.
        assert sched.get("sched.reexec_early", 0) > 0


class TestEngineEquivalence:
    @pytest.mark.parametrize("app", sorted(APPLICATIONS))
    @pytest.mark.parametrize("merge", ["sequential", "parallel"])
    def test_ooo_equals_barrier_and_reference_per_app(self, app, merge):
        dfa, inp = APPLICATIONS[app].build(6000, seed=5)
        ref = run_reference(dfa, inp)
        kw = dict(k=3, num_blocks=2, threads_per_block=32, merge=merge,
                  collect=("match_positions",))
        barrier = run_speculative(dfa, inp, schedule="barrier", **kw)
        ooo = run_speculative(dfa, inp, schedule="ooo", **kw)
        assert barrier.final_state == ref
        assert ooo.final_state == ref
        np.testing.assert_array_equal(
            ooo.match_positions, barrier.match_positions
        )

    @pytest.mark.parametrize("kernel", ["lockstep", "stride2", "stride4"])
    @pytest.mark.parametrize("collapse", [None, "auto"])
    def test_ooo_across_kernels_and_collapse(self, kernel, collapse):
        dfa, inp = APPLICATIONS["div7"].build(6000, seed=6)
        ref = run_reference(dfa, inp)
        for merge in ("sequential", "parallel"):
            res = run_speculative(
                dfa, inp, k=2, num_blocks=2, threads_per_block=32,
                merge=merge, kernel=kernel, collapse=collapse,
                schedule="ooo",
            )
            assert res.final_state == ref, (kernel, collapse, merge)

    def test_ragged_plan_uses_active_list(self):
        """A skewed explicit plan routes through run_chunks_active and
        still matches the reference."""
        dfa = make_random_dfa(8, 3, seed=7)
        n = 9000
        inp = random_input(3, n, seed=8)
        lengths = np.array([4000, 100, 50, 2000, 10, 2840], dtype=np.int64)
        assert int(lengths.sum()) == n
        plan = plan_from_lengths(lengths)
        res = run_speculative(
            dfa, inp, k=2, num_blocks=1, threads_per_block=32,
            plan=plan, schedule="ooo",
        )
        assert res.final_state == run_reference(dfa, inp)

    def test_run_chunks_active_posts_equal_lockstep(self):
        dfa = make_random_dfa(7, 3, seed=9)
        n = 3000
        inp = random_input(3, n, seed=10)
        plan = plan_from_lengths(np.array([1500, 10, 700, 790], dtype=np.int64))
        spec = speculate(dfa, inp, plan, 2, lookback=4)
        board = ChunkScoreboard(dfa, inp, plan, 2)
        run_chunks_active(dfa, inp, plan, spec, board)
        final, _ = board.resolve()
        assert final == run_reference(dfa, inp)

    def test_bad_schedule_rejected(self):
        dfa = make_random_dfa(4, 2, seed=0)
        inp = random_input(2, 100, seed=1)
        with pytest.raises(ValueError):
            run_speculative(dfa, inp, num_blocks=1, threads_per_block=32,
                            schedule="speculative")


class TestPredictor:
    def test_fingerprint_deterministic_and_distinct(self):
        a = make_random_dfa(6, 3, seed=1)
        b = make_random_dfa(6, 3, seed=2)
        assert dfa_fingerprint(a) == dfa_fingerprint(a)
        assert dfa_fingerprint(a) != dfa_fingerprint(b)

    def test_observe_shifts_prior(self):
        dfa = make_random_dfa(5, 2, seed=3)
        pred = HistoryPredictor()
        assert pred.prior(dfa) is None  # no history yet
        # Feed a history where state 2 dominates chunk starts.
        pred.observe(dfa, np.full(50, 2, dtype=np.int64))
        skewed = pred.prior(dfa)
        assert skewed is not None and skewed.argmax() == 2
        assert pred.ranking(dfa)[2] == 0  # state 2 ranked most likely

    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "priors.json"
        dfa = make_random_dfa(5, 2, seed=4)
        pred = HistoryPredictor(path)
        pred.observe(dfa, np.full(20, 3, dtype=np.int64))
        pred.save()
        again = HistoryPredictor(path)
        assert again.runs_observed(dfa) == 1
        assert again.ranking(dfa)[3] == 0  # state 3 ranked most likely

    def test_engine_history_integration(self, tmp_path):
        path = tmp_path / "hist.json"
        dfa = make_random_dfa(8, 3, seed=5)
        inp = random_input(3, 8000, seed=6)
        ref = run_reference(dfa, inp)
        for _ in range(2):
            res = run_speculative(
                dfa, inp, k=2, num_blocks=1, threads_per_block=32,
                merge="parallel", history=path, schedule="ooo",
            )
            assert res.final_state == ref
        assert path.exists()
        assert HistoryPredictor(path).runs_observed(dfa) == 2


class TestPoolOutOfOrder:
    def test_pool_ooo_equals_barrier(self):
        dfa = make_random_dfa(9, 3, seed=20)
        inp = random_input(3, 20_000, seed=21)
        ref = run_reference(dfa, inp)
        with ScaleoutPool(dfa, num_workers=3, k=3,
                          sub_chunks_per_worker=8) as pool:
            barrier = pool.run(inp, schedule="barrier")
            ooo = pool.run(inp, schedule="ooo")
        assert barrier.final_state == ref
        assert ooo.final_state == ref

    def test_pool_ooo_collect_matches(self):
        dfa, inp = APPLICATIONS["html"].build(18_000, seed=22)
        eng = run_speculative(dfa, inp, k=2, num_blocks=2,
                              threads_per_block=32,
                              collect=("match_positions",))
        with ScaleoutPool(dfa, num_workers=3, k=2,
                          sub_chunks_per_worker=8) as pool:
            for schedule in ("barrier", "ooo"):
                res = pool.run(inp, schedule=schedule, collect_matches=True)
                assert res.final_state == eng.final_state
                np.testing.assert_array_equal(
                    res.match_positions, eng.match_positions
                )

    @pytest.mark.parametrize("victim", [0, 1])
    def test_kill_mid_run_ooo_recovers_exactly(self, victim):
        """A killed worker's chunks are re-issued on the scoreboard and the
        retried results post cleanly — same answer, not degraded."""
        dfa = make_random_dfa(10, 4, seed=victim + 30)
        inp = random_input(4, 16_000, seed=victim + 40)
        ref = run_reference(dfa, inp)
        plan = fi.FaultPlan([fi.kill_worker(victim, at_task=0)])
        with ScaleoutPool(dfa, num_workers=3, k=4, sub_chunks_per_worker=8,
                          fault_plan=plan) as pool:
            res = pool.run(inp, schedule="ooo")
        assert res.final_state == ref
        assert res.degraded is False
        assert res.recovery is not None
        assert res.recovery.worker_deaths == 1

    def test_corrupt_result_ooo_detected_and_retried(self):
        dfa = make_random_dfa(8, 3, seed=50)
        inp = random_input(3, 12_000, seed=51)
        plan = fi.FaultPlan([fi.corrupt_result_map(1, at_task=0)])
        with ScaleoutPool(dfa, num_workers=3, k=3, sub_chunks_per_worker=8,
                          fault_plan=plan) as pool:
            res = pool.run(inp, schedule="ooo")
        assert res.final_state == run_reference(dfa, inp)
        assert res.degraded is False

    def test_bad_schedule_rejected(self):
        dfa = make_random_dfa(4, 2, seed=0)
        with ScaleoutPool(dfa, num_workers=2,
                          sub_chunks_per_worker=4) as pool:
            with pytest.raises(ValueError):
                pool.run(random_input(2, 100, seed=1), schedule="yolo")
