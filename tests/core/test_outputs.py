"""Tests for application-output recovery through the engine (matches,
decoded symbols, accept counts)."""

import numpy as np
import pytest

import repro
from repro.apps.huffman import HuffmanCode
from repro.apps.paper_regexes import build_regex1, regex1_alphabet
from repro.fsm.run import run_reference_trace
from tests.conftest import make_random_dfa, random_input


class TestMatchPositions:
    def test_regex_matches_equal_sequential(self):
        dfa, class_of = build_regex1()
        ab = regex1_alphabet()
        rng = np.random.default_rng(5)
        text = "".join(rng.choice(list("likeapxyz"), size=3000))
        ids = class_of[ab.encode_text(text)].astype(np.int32)
        r = repro.run_speculative(
            dfa, ids, k=4, num_blocks=2, threads_per_block=32,
            collect=("match_positions",), price=False,
        )
        trace = run_reference_trace(dfa, ids)
        want = np.flatnonzero(dfa.accepting[trace])
        np.testing.assert_array_equal(r.match_positions, want)

    def test_accept_count_collected(self):
        dfa = make_random_dfa(5, 2, seed=0, accepting_fraction=0.4)
        inp = random_input(2, 300, seed=1)
        r = repro.run_speculative(
            dfa, inp, k=2, num_blocks=1, threads_per_block=32,
            collect=("accept_count",), price=False,
        )
        assert r.accept_counts is not None
        assert r.accept_counts.shape == (32, 2)

    def test_no_matches(self):
        dfa, _ = build_regex1()
        # class 6 is 'other': no match can ever complete
        ids = np.full(500, 6, dtype=np.int32)
        r = repro.run_speculative(
            dfa, ids, k=2, num_blocks=1, threads_per_block=32,
            collect=("match_positions",), price=False,
        )
        assert r.match_positions.size == 0


class TestEmissions:
    @pytest.mark.parametrize("merge", ["sequential", "parallel"])
    def test_huffman_decode_through_engine(self, merge):
        code = HuffmanCode.from_frequencies(np.array([9, 6, 4, 2, 1, 1]))
        data = np.random.default_rng(7).integers(0, 6, size=2000)
        bits = code.encode(data).astype(np.int32)
        dfa = code.decoder_dfa()
        r = repro.run_speculative(
            dfa, bits, k=3, num_blocks=2, threads_per_block=32, merge=merge,
            lookback=16, collect=("emissions",), price=False,
        )
        positions, values = r.emissions
        np.testing.assert_array_equal(values, data)
        assert positions.size == data.size
        assert np.all(np.diff(positions) > 0)

    def test_html_tokens_through_engine(self):
        from repro.apps.html_tok import build_html_tokenizer, reference_tokenize
        from repro.fsm.alphabet import Alphabet
        from repro.workloads.html import synthetic_page

        page = synthetic_page(4000, rng=3)
        dfa = build_html_tokenizer()
        ids = Alphabet.ascii(128).encode_text(page).astype(np.int32)
        r = repro.run_speculative(
            dfa, ids, k=1, num_blocks=1, threads_per_block=64, lookback=64,
            collect=("emissions",), price=False,
        )
        positions, values = r.emissions
        want = reference_tokenize(page)
        got = list(zip(positions.tolist(), values.tolist()))
        assert got == want

    def test_emissions_deterministic_across_configs(self):
        code = HuffmanCode.from_frequencies(np.array([5, 3, 2, 1]))
        data = np.random.default_rng(9).integers(0, 4, size=800)
        bits = code.encode(data).astype(np.int32)
        dfa = code.decoder_dfa()
        outs = []
        for chunks in ((1, 32), (2, 64)):
            r = repro.run_speculative(
                dfa, bits, k=2, num_blocks=chunks[0], threads_per_block=chunks[1],
                collect=("emissions",), price=False,
            )
            outs.append(r.emissions[1])
        np.testing.assert_array_equal(outs[0], outs[1])
