"""Tests for lock-step local processing and output recovery."""

import numpy as np
import pytest

from repro.core.local import process_chunks, recover_accepts, recover_emissions
from repro.core.types import ExecStats
from repro.fsm.run import run_segment
from repro.workloads.chunking import plan_chunks, transform_layout
from tests.conftest import make_random_dfa, random_input


def brute_force_end(dfa, inputs, plan, spec):
    out = np.empty_like(spec)
    for c in range(plan.num_chunks):
        seg = inputs[plan.chunk_slice(c)]
        for j in range(spec.shape[1]):
            out[c, j] = run_segment(dfa, seg, int(spec[c, j]))
    return out


class TestProcessChunks:
    @pytest.mark.parametrize("n,chunks,k", [(100, 4, 2), (97, 5, 3), (7, 10, 1), (0, 3, 2)])
    def test_matches_brute_force(self, n, chunks, k):
        dfa = make_random_dfa(6, 3, seed=n + chunks)
        inp = random_input(3, n, seed=1)
        plan = plan_chunks(n, chunks)
        rng = np.random.default_rng(0)
        spec = rng.integers(0, 6, size=(chunks, k)).astype(np.int32)
        end, _ = process_chunks(dfa, inp, plan, spec)
        np.testing.assert_array_equal(end, brute_force_end(dfa, inp, plan, spec))

    def test_transformed_equals_natural(self):
        dfa = make_random_dfa(5, 2, seed=3)
        inp = random_input(2, 237, seed=2)
        plan = plan_chunks(237, 8)
        spec = np.zeros((8, 2), dtype=np.int32)
        spec[:, 1] = 1
        nat, _ = process_chunks(dfa, inp, plan, spec)
        tra, _ = process_chunks(
            dfa, inp, plan, spec, transformed=transform_layout(inp, plan)
        )
        np.testing.assert_array_equal(nat, tra)

    def test_empty_chunks_identity(self):
        dfa = make_random_dfa(5, 2, seed=3)
        inp = random_input(2, 3, seed=2)
        plan = plan_chunks(3, 6)  # chunks 3..5 empty
        spec = np.arange(6, dtype=np.int32)[:, None] % 5
        end, _ = process_chunks(dfa, inp, plan, spec)
        np.testing.assert_array_equal(end[3:], spec[3:])

    def test_stats_counters(self):
        dfa = make_random_dfa(5, 2, seed=3)
        inp = random_input(2, 100, seed=2)
        plan = plan_chunks(100, 4)
        spec = np.zeros((4, 3), dtype=np.int32)
        stats = ExecStats()
        process_chunks(dfa, inp, plan, spec, stats=stats)
        assert stats.local_transitions == 100 * 3
        assert stats.local_input_reads == 100
        assert stats.local_steps == 25

    def test_accept_counts(self):
        dfa = make_random_dfa(5, 2, seed=4, accepting_fraction=0.5)
        inp = random_input(2, 60, seed=2)
        plan = plan_chunks(60, 3)
        spec = np.zeros((3, 1), dtype=np.int32)
        _, acc = process_chunks(dfa, inp, plan, spec, count_accepting=True)
        # brute force accept count for chunk 0 from state 0
        seg = inp[plan.chunk_slice(0)]
        state, count = 0, 0
        for a in seg:
            state = dfa.step(state, int(a))
            count += bool(dfa.accepting[state])
        assert acc[0, 0] == count

    def test_cache_mask_counting(self):
        dfa = make_random_dfa(5, 2, seed=4)
        inp = random_input(2, 50, seed=2)
        plan = plan_chunks(50, 2)
        spec = np.zeros((2, 2), dtype=np.int32)
        stats = ExecStats()
        mask = np.ones(5, dtype=bool)  # everything cached
        process_chunks(dfa, inp, plan, spec, stats=stats, cache_mask=mask)
        assert stats.cache_hits == 50 * 2
        assert stats.cache_misses == 0

    def test_bad_spec_shape(self):
        dfa = make_random_dfa(5, 2, seed=4)
        inp = random_input(2, 50, seed=2)
        plan = plan_chunks(50, 2)
        with pytest.raises(ValueError, match="spec"):
            process_chunks(dfa, inp, plan, np.zeros((3, 2), dtype=np.int32))


class TestRecovery:
    def test_recover_accepts_equals_trace(self):
        from repro.fsm.run import run_reference_trace

        dfa = make_random_dfa(6, 2, seed=1, accepting_fraction=0.4)
        inp = random_input(2, 120, seed=9)
        plan = plan_chunks(120, 5)
        # true starts from a sequential trace
        trace = run_reference_trace(dfa, inp)
        starts = np.concatenate([[dfa.start], trace[plan.starts[1:] - 1]]).astype(np.int32)
        got = recover_accepts(dfa, inp, plan, starts)
        want = np.flatnonzero(dfa.accepting[trace])
        np.testing.assert_array_equal(got, want)

    def test_recover_emissions_matches_sequential(self):
        from repro.apps.huffman import HuffmanCode
        from repro.fsm.run import run_reference_trace

        code = HuffmanCode.from_frequencies(np.array([5, 4, 3, 2, 1]))
        data = np.random.default_rng(0).integers(0, 5, size=300)
        bits = code.encode(data).astype(np.int32)
        dfa = code.decoder_dfa()
        plan = plan_chunks(bits.size, 7)
        trace = run_reference_trace(dfa, bits)
        starts = np.concatenate([[dfa.start], trace[plan.starts[1:] - 1]]).astype(np.int32)
        _, values = recover_emissions(dfa, bits, plan, starts)
        np.testing.assert_array_equal(values, data)

    def test_recover_emissions_requires_transducer(self):
        dfa = make_random_dfa(4, 2, seed=0)
        inp = random_input(2, 10, seed=0)
        plan = plan_chunks(10, 2)
        with pytest.raises(ValueError, match="emission"):
            recover_emissions(dfa, inp, plan, np.zeros(2, dtype=np.int32))

    def test_recover_bad_starts_shape(self):
        dfa = make_random_dfa(4, 2, seed=0)
        inp = random_input(2, 10, seed=0)
        plan = plan_chunks(10, 2)
        with pytest.raises(ValueError, match="true_starts"):
            recover_accepts(dfa, inp, plan, np.zeros(3, dtype=np.int32))
