"""Signal-teardown drill: a signalled parent leaves no shared memory.

ISSUE 9 satellite: prove :class:`repro.core.mp_executor.ScaleoutPool`'s
SIGTERM/SIGINT handler makes teardown idempotent — a parent process
killed mid-run unlinks every ``/dev/shm`` segment it published before
dying, and the signal's default consequence (death by SIGTERM, or
``KeyboardInterrupt`` for SIGINT) is preserved.
"""

from __future__ import annotations

import glob
import os
import signal
import subprocess
import sys
import textwrap

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

#: Child: build a pool, start a long run on a thread, signal readiness,
#: then spin until the parent's signal kills it. SIGINT surfaces as
#: KeyboardInterrupt (the pool's handler re-raises it after unlinking);
#: the child exits via os._exit the way a real application's Ctrl-C
#: handler would — letting the interpreter *finalize* under a daemon
#: thread that is mid-NumPy-call is a known CPython crash mode that has
#: nothing to do with the pool's teardown.
CHILD = textwrap.dedent(
    """
    import os, sys, threading, time
    import numpy as np
    from repro.core.faultinject import FaultPlan
    from repro.core.mp_executor import ScaleoutPool
    from repro.fsm.dfa import DFA

    dfa = DFA.random(16, 6, rng=0)
    pool = ScaleoutPool(dfa, num_workers=2, fault_plan=FaultPlan())
    inputs = np.random.default_rng(0).integers(
        0, 6, size=2_000_000, dtype=np.int32
    )
    def work():
        while True:
            pool.run(inputs)
    t = threading.Thread(target=work, daemon=True)
    t.start()
    print("READY", flush=True)  # segments exist from construction
    try:
        time.sleep(30)
    except KeyboardInterrupt:
        os._exit(1)
    """
)


def shm_segments() -> set:
    """Names of POSIX shared-memory segments currently in /dev/shm."""
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signalled_parent_leaves_no_shm(signum):
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this platform")
    before = shm_segments()
    proc = subprocess.Popen(
        [sys.executable, "-c", CHILD],
        env={**os.environ, "PYTHONPATH": SRC},
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        assert proc.stdout.readline().strip() == "READY"
        mid = shm_segments() - before
        assert mid, "pool should have published shared segments"
        proc.send_signal(signum)
        rc = proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    # Default consequence preserved: SIGTERM kills with -SIGTERM;
    # SIGINT surfaces as KeyboardInterrupt, which the child's own
    # handler converts to exit code 1 (or -SIGINT if the signal lands
    # before the pool's handler is in place).
    if signum == signal.SIGTERM:
        assert rc == -signal.SIGTERM
    else:
        assert rc in (1, -signal.SIGINT)
    assert shm_segments() <= before, "signalled parent leaked /dev/shm"


def test_signal_teardown_idempotent_with_close():
    """An explicit close() after the handler installed still works."""
    import numpy as np

    from repro.core.faultinject import FaultPlan
    from repro.core.mp_executor import ScaleoutPool
    from repro.fsm.dfa import DFA

    before = shm_segments()
    dfa = DFA.random(12, 4, rng=1)
    pool = ScaleoutPool(dfa, num_workers=2, fault_plan=FaultPlan())
    inputs = np.random.default_rng(1).integers(0, 4, size=50_000, dtype=np.int32)
    res = pool.run(inputs)
    pool.close()
    pool.close()  # idempotent
    assert res.final_state >= 0
    assert shm_segments() <= before
