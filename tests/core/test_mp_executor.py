"""Tests for the multiprocessing backend and the persistent ScaleoutPool."""

import numpy as np
import pytest

from repro.apps.div import div7_dfa
from repro.core.mp_executor import PoolClosedError, ScaleoutPool, run_multiprocess
from repro.fsm.run import run_reference
from tests.conftest import make_random_dfa, random_input


class TestMultiprocess:
    def test_single_worker_exact(self):
        dfa = make_random_dfa(6, 2, seed=0)
        inp = random_input(2, 5000, seed=1)
        res = run_multiprocess(dfa, inp, num_workers=1)
        assert res.final_state == run_reference(dfa, inp)
        assert res.segment_reexecs == 0

    def test_spec_n_workers_no_reexec(self):
        dfa = make_random_dfa(6, 2, seed=0)
        inp = random_input(2, 20_000, seed=1)
        res = run_multiprocess(dfa, inp, num_workers=2)
        assert res.final_state == run_reference(dfa, inp)
        assert res.segment_reexecs == 0
        assert res.stats.success_rate == 1.0

    def test_speculative_workers_correct(self):
        dfa = div7_dfa()  # adversarial: small k will miss
        inp = random_input(2, 10_000, seed=2)
        res = run_multiprocess(dfa, inp, num_workers=2, k=2,
                               sub_chunks_per_worker=8)
        assert res.final_state == run_reference(dfa, inp)

    def test_empty_input(self):
        dfa = make_random_dfa(4, 2, seed=3)
        res = run_multiprocess(dfa, np.zeros(0, dtype=np.int32), num_workers=2)
        assert res.final_state == dfa.start

    def test_bad_worker_count(self):
        dfa = make_random_dfa(4, 2, seed=3)
        with pytest.raises(ValueError):
            run_multiprocess(dfa, np.zeros(4, dtype=np.int32), num_workers=0)

    def test_input_smaller_than_workers(self):
        dfa = make_random_dfa(4, 2, seed=3)
        inp = random_input(2, 3, seed=0)
        res = run_multiprocess(dfa, inp, num_workers=2, sub_chunks_per_worker=4)
        assert res.final_state == run_reference(dfa, inp)


class TestWorkerZeroPinning:
    """Worker 0's boundary row must carry the true start state, so segment 0
    is never re-executed — it used to burn a guaranteed serial pass."""

    def test_div7_small_k_never_reexecutes_segment_zero(self):
        dfa = div7_dfa()  # never converges: every boundary guess can miss
        for k in (1, 2):
            for seed in (0, 1, 2):
                inp = random_input(2, 6_000, seed=seed)
                res = run_multiprocess(dfa, inp, num_workers=3, k=k,
                                       sub_chunks_per_worker=8)
                assert res.final_state == run_reference(dfa, inp)
                assert 0 not in res.reexec_segments, (k, seed)

    def test_div7_k1_later_segments_do_miss(self):
        # Sanity that the assertion above is not vacuous: with k=1 on Div7
        # some boundary beyond segment 0 misses and gets re-executed.
        dfa = div7_dfa()
        missed = 0
        for seed in (0, 1, 2, 3):
            inp = random_input(2, 6_000, seed=seed)
            res = run_multiprocess(dfa, inp, num_workers=3, k=1,
                                   sub_chunks_per_worker=8)
            missed += res.segment_reexecs
        assert missed > 0

    def test_pinning_holds_for_carried_start_state(self):
        # Streaming passes a carried state as the run's start; the pin must
        # follow it, not the machine's initial state.
        dfa = div7_dfa()
        inp = random_input(2, 4_000, seed=5)
        with ScaleoutPool(dfa, num_workers=3, k=1, sub_chunks_per_worker=8) as pool:
            for start in range(dfa.num_states):
                res = pool.run(inp, start=start)
                assert res.final_state == run_reference(dfa, inp, start=start)
                assert 0 not in res.reexec_segments


class TestScaleoutPool:
    def test_persistent_across_calls(self):
        dfa = make_random_dfa(8, 3, seed=4)
        with ScaleoutPool(dfa, num_workers=2, k=3, sub_chunks_per_worker=8) as pool:
            for seed in range(4):
                inp = random_input(3, 3_000 + 500 * seed, seed=seed)
                res = pool.run(inp)
                assert res.final_state == run_reference(dfa, inp)
            assert pool.calls == 4

    def test_segments_created_once_not_per_call(self):
        dfa = make_random_dfa(6, 2, seed=5)
        with ScaleoutPool(dfa, num_workers=2) as pool:
            inp = random_input(2, 4_000, seed=0)
            first = pool.run(inp)
            names = (pool._table_shm.name, pool._input_shm.name)
            second = pool.run(random_input(2, 3_000, seed=1))  # smaller: reuse
            assert (pool._table_shm.name, pool._input_shm.name) == names
            assert first.stats.pool_shm_bytes == second.stats.pool_shm_bytes
            # dispatch payload is names + boundary rows, not table or input
            assert second.stats.pool_task_bytes < 4_096

    def test_input_buffer_grows_geometrically(self):
        dfa = make_random_dfa(6, 2, seed=5)
        with ScaleoutPool(dfa, num_workers=2) as pool:
            pool.run(random_input(2, 1_000, seed=0))
            cap1 = pool._input_capacity
            inp = random_input(2, 10_000, seed=1)
            res = pool.run(inp)
            assert pool._input_capacity >= 10_000 > cap1
            assert res.final_state == run_reference(dfa, inp)

    def test_closed_pool_rejects_runs(self):
        dfa = make_random_dfa(4, 2, seed=0)
        pool = ScaleoutPool(dfa, num_workers=2)
        pool.close()
        assert pool.closed
        with pytest.raises(RuntimeError):
            pool.run(random_input(2, 100, seed=0))
        pool.close()  # idempotent

    def test_closed_pool_raises_typed_error(self):
        """The rejection is a clear PoolClosedError, not a buffer error."""
        dfa = make_random_dfa(4, 2, seed=0)
        pool = ScaleoutPool(dfa, num_workers=2)
        pool.close()
        with pytest.raises(PoolClosedError, match="closed"):
            pool.run(random_input(2, 100, seed=0))

    def test_context_manager_double_close(self):
        """Exiting the context then closing again (e.g. from __del__) is
        safe, and the typed error still fires afterwards."""
        dfa = make_random_dfa(4, 2, seed=1)
        inp = random_input(2, 4_000, seed=2)
        with ScaleoutPool(dfa, num_workers=2) as pool:
            assert pool.run(inp).final_state == run_reference(dfa, inp)
        assert pool.closed
        pool.close()
        pool.close()
        with pytest.raises(PoolClosedError):
            pool.run(inp)

    def test_run_multiprocess_reuses_given_pool(self):
        dfa = make_random_dfa(5, 2, seed=6)
        inp = random_input(2, 5_000, seed=7)
        with ScaleoutPool(dfa, num_workers=2, k=2, sub_chunks_per_worker=8) as pool:
            res = run_multiprocess(dfa, inp, pool=pool)
            assert res.final_state == run_reference(dfa, inp)
            assert pool.calls == 1

    def test_bad_start_state(self):
        dfa = make_random_dfa(4, 2, seed=0)
        with ScaleoutPool(dfa, num_workers=2) as pool:
            with pytest.raises(ValueError):
                pool.run(random_input(2, 100, seed=0), start=99)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            ScaleoutPool(make_random_dfa(4, 2, seed=0), num_workers=2, k=0)


class TestBitIdentical:
    """The pool backend must agree with the sequential reference (and hence
    with run_speculative, which property tests pin to the same truth) over
    machines × inputs × worker counts × k."""

    @pytest.mark.parametrize("num_states,num_inputs,seed", [
        (3, 2, 0), (7, 2, 1), (12, 4, 2),
    ])
    def test_random_machines_all_widths(self, num_states, num_inputs, seed):
        dfa = make_random_dfa(num_states, num_inputs, seed=seed)
        for workers in (2, 3, 5):
            with ScaleoutPool(dfa, num_workers=workers, k=2,
                              sub_chunks_per_worker=8) as pool:
                for inp_seed in (0, 1):
                    inp = random_input(num_inputs, 2_000 + 997 * inp_seed,
                                       seed=inp_seed)
                    res = pool.run(inp)
                    assert res.final_state == run_reference(dfa, inp), (
                        num_states, workers, inp_seed
                    )

    def test_matches_run_speculative(self):
        from repro.core.engine import run_speculative

        dfa = make_random_dfa(9, 3, seed=8)
        inp = random_input(3, 8_000, seed=9)
        want = run_speculative(dfa, inp, k=3, num_blocks=1,
                               threads_per_block=32, price=False).final_state
        for k in (1, 3, None):
            res = run_multiprocess(dfa, inp, num_workers=4, k=k,
                                   sub_chunks_per_worker=8)
            assert res.final_state == want

    def test_div7_every_worker_count(self):
        dfa = div7_dfa()
        inp = random_input(2, 7_001, seed=10)  # odd size: ragged segments
        want = run_reference(dfa, inp)
        for workers in (2, 4, 6):
            for k in (1, 3, None):
                res = run_multiprocess(dfa, inp, num_workers=workers, k=k,
                                       sub_chunks_per_worker=4)
                assert res.final_state == want, (workers, k)


class TestTimings:
    def test_pool_run_timing_components_sum_to_total(self):
        dfa = make_random_dfa(6, 2, seed=11)
        inp = random_input(2, 20_000, seed=12)
        with ScaleoutPool(dfa, num_workers=2, k=2,
                          sub_chunks_per_worker=8) as pool:
            res = pool.run(inp)
        t = res.timing
        assert t is not None
        # The stage timestamps are contiguous, so the components tile the
        # total exactly (up to float rounding).
        assert t.stages_s == pytest.approx(t.total_s, rel=1e-6, abs=1e-9)
        for v in (t.speculate_s, t.publish_s, t.dispatch_s,
                  t.wait_s, t.merge_s):
            assert v >= 0.0

    def test_worker_timings_within_wall_time(self):
        dfa = make_random_dfa(7, 2, seed=13)
        inp = random_input(2, 40_000, seed=14)
        with ScaleoutPool(dfa, num_workers=3, k=2,
                          sub_chunks_per_worker=8) as pool:
            res = pool.run(inp)
        assert len(res.worker_timings) == 3
        for wt in res.worker_timings:
            # Each worker's internal phases sum to at most its own total...
            assert wt.attach_s + wt.exec_s + wt.fold_s <= wt.total_s + 1e-6
            # ...and no worker can run longer than the wait window the
            # parent measured around the whole fan-out (generous tolerance:
            # includes dispatch overlap and scheduler noise).
            assert wt.total_s <= res.timing.dispatch_s + res.timing.wait_s + 0.25

    def test_pool_run_emits_obs_spans(self):
        from repro.obs.trace import RunTrace

        dfa = make_random_dfa(5, 2, seed=15)
        inp = random_input(2, 10_000, seed=16)
        t = RunTrace("pool")
        with ScaleoutPool(dfa, num_workers=2, k=2,
                          sub_chunks_per_worker=8) as pool:
            with t.activate():
                pool.run(inp)
        names = {s.name for s in t.spans}
        assert {"pool.publish_input", "pool.speculate", "pool.dispatch",
                "pool.wait", "pool.merge"} <= names
        workers = t.find("pool.worker")
        assert len(workers) == 2
        wait = t.find("pool.wait")[0]
        for w in workers:
            # Worker spans are drawn inside the parent's dispatch+wait
            # window (start-aligned to dispatch).
            assert w.t1 <= wait.t1 + 0.25
        assert t.counters["pool.shm.input_bytes"].value == inp.nbytes
