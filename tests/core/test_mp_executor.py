"""Tests for the multiprocessing backend."""

import numpy as np
import pytest

from repro.apps.div import div7_dfa
from repro.core.mp_executor import run_multiprocess
from repro.fsm.run import run_reference
from tests.conftest import make_random_dfa, random_input


class TestMultiprocess:
    def test_single_worker_exact(self):
        dfa = make_random_dfa(6, 2, seed=0)
        inp = random_input(2, 5000, seed=1)
        res = run_multiprocess(dfa, inp, num_workers=1)
        assert res.final_state == run_reference(dfa, inp)
        assert res.segment_reexecs == 0

    def test_spec_n_workers_no_reexec(self):
        dfa = make_random_dfa(6, 2, seed=0)
        inp = random_input(2, 20_000, seed=1)
        res = run_multiprocess(dfa, inp, num_workers=2)
        assert res.final_state == run_reference(dfa, inp)
        assert res.segment_reexecs == 0
        assert res.stats.success_rate == 1.0

    def test_speculative_workers_correct(self):
        dfa = div7_dfa()  # adversarial: small k will miss
        inp = random_input(2, 10_000, seed=2)
        res = run_multiprocess(dfa, inp, num_workers=2, k=2,
                               sub_chunks_per_worker=8)
        assert res.final_state == run_reference(dfa, inp)

    def test_empty_input(self):
        dfa = make_random_dfa(4, 2, seed=3)
        res = run_multiprocess(dfa, np.zeros(0, dtype=np.int32), num_workers=2)
        assert res.final_state == dfa.start

    def test_bad_worker_count(self):
        dfa = make_random_dfa(4, 2, seed=3)
        with pytest.raises(ValueError):
            run_multiprocess(dfa, np.zeros(4, dtype=np.int32), num_workers=0)

    def test_input_smaller_than_workers(self):
        dfa = make_random_dfa(4, 2, seed=3)
        inp = random_input(2, 3, seed=0)
        res = run_multiprocess(dfa, inp, num_workers=2, sub_chunks_per_worker=4)
        assert res.final_state == run_reference(dfa, inp)
