"""Property tests for the convergence-aware lane-collapse layer.

The contract under test: collapsed execution is **bit-identical** to both
the uncollapsed lock-step run and the sequential reference — across every
registered kernel, every application (including never-converging Div7),
empty chunks, ragged tails, and speculation wider than the state space —
while the modeled counters keep lock-step semantics and the physical
gather count shrinks. Converged chunks must never be charged a merge
check or trigger a re-execution.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.core.faultinject as fi
from repro.apps import APPLICATIONS, get_application
from repro.core.autotune import choose_collapse
from repro.core.convergence import (
    CADENCE_BACKOFF,
    DEFAULT_CADENCE,
    CollapseConfig,
    LaneCollapser,
    _pack_lanes,
    collapse_rows,
    converged_chunks,
    coverage_mask,
    probe_cadence,
    resolve_collapse,
)
from repro.core.engine import run_speculative
from repro.core.kernels import KERNELS, plan_kernel, process_chunks_kernel
from repro.core.local import process_chunks
from repro.core.lookback import speculate
from repro.core.mp_executor import ScaleoutPool
from repro.core.streaming import StreamingExecutor
from repro.core.types import ExecStats
from repro.fsm.run import run_reference
from repro.workloads.chunking import plan_chunks
from tests.conftest import make_random_dfa, random_input


# --------------------------------------------------------------------------- #
# Storage packing
# --------------------------------------------------------------------------- #


class TestPackLanes:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 40),
        k=st.integers(1, 12),
        ns=st.integers(1, 15),
        seed=st.integers(0, 2**31),
    )
    def test_round_trip_and_rowmap_validity(self, n, k, ns, seed):
        rng = np.random.default_rng(seed)
        S = rng.integers(0, ns, size=(n, k)).astype(np.int32)
        out = _pack_lanes(S)
        u_max = max(len(np.unique(r)) for r in S)
        if k <= 1 or u_max >= k:
            assert out is None
            return
        storage, rowmap, recon = out
        # Exact reconstruction of every original lane.
        np.testing.assert_array_equal(storage.ravel()[recon], S)
        # Storage never grows and genuinely shrinks.
        assert storage.size < S.size
        # The first n rows are the chunks themselves, in order.
        np.testing.assert_array_equal(rowmap[:n], np.arange(n))
        # Every storage row (incl. padding) holds states achievable for its
        # chunk — a spill/padding lane never consumes a foreign symbol.
        for i, c in enumerate(rowmap):
            assert set(storage[i].tolist()) <= set(S[c].tolist())

    def test_collapse_rows_round_trip(self):
        S = np.array([[3, 3, 1], [2, 2, 2], [4, 1, 4]], dtype=np.int32)
        compressed, recon = collapse_rows(S)
        np.testing.assert_array_equal(
            np.take_along_axis(compressed, recon, axis=1), S
        )
        assert compressed.shape[1] == 2  # widest row has 2 distinct lanes

    def test_all_distinct_returns_none(self):
        S = np.arange(12, dtype=np.int32).reshape(3, 4)
        assert collapse_rows(S) is None
        assert _pack_lanes(S) is None

    def test_single_lane_returns_none(self):
        S = np.zeros((5, 1), dtype=np.int32)
        assert collapse_rows(S) is None
        assert _pack_lanes(S) is None

    def test_straggler_spills_instead_of_holding_width(self):
        # 7 converged chunks + 1 straggler with 7 distinct lanes: the
        # straggler must not keep the storage at full width.
        S = np.full((8, 8), 5, dtype=np.int32)
        S[0, :7] = np.arange(7)
        storage, rowmap, recon = _pack_lanes(S)
        assert storage.shape[1] < 8
        assert storage.shape[0] > 8  # spill rows for the straggler
        assert (rowmap[8:] == 0).all()  # all spill rows belong to chunk 0
        np.testing.assert_array_equal(storage.ravel()[recon], S)


class TestLaneCollapser:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        cadence=st.integers(1, 40),
        steps=st.integers(0, 120),
    )
    def test_collapsed_walk_equals_plain_walk(self, seed, cadence, steps):
        rng = np.random.default_rng(seed)
        n, k, ns, na = 13, 6, 9, 5
        table = rng.integers(0, ns, size=(na, ns)).astype(np.int32)
        S0 = rng.integers(0, ns, size=(n, k)).astype(np.int32)
        syms = rng.integers(0, na, size=(steps, n))
        ref = S0.copy()
        for j in range(steps):
            ref = table[syms[j][:, None], ref]
        col = LaneCollapser(k, CollapseConfig(cadence=cadence))
        S = S0.copy()
        consumed = 0
        for j in range(steps):
            sy = syms[j]
            if col.rowmap is not None:
                sy = sy[col.rowmap]
            S = table[sy[:, None], S]
            consumed += 1
            if consumed >= col.next_scan:
                S = col.scan(S, consumed)
        np.testing.assert_array_equal(col.expand(S), ref)
        assert col.width <= k

    def test_backoff_on_non_converging_machine(self):
        # A permutation table never merges lanes: every scan misses and the
        # cadence backs off geometrically, bounding total scans.
        n, k, steps = 8, 4, 4096
        table = np.stack([np.roll(np.arange(7), s) for s in (1, 3)]).astype(
            np.int32
        )
        rng = np.random.default_rng(0)
        S = np.tile(np.arange(4, dtype=np.int32), (n, 1))
        col = LaneCollapser(k, CollapseConfig(cadence=8))
        consumed = 0
        for j in range(steps):
            S = table[rng.integers(0, 2), S]
            consumed += 1
            if consumed >= col.next_scan:
                S = col.scan(S, consumed)
        assert col.width == k and col.rowmap is None
        # 8, 16, 32, ... doubling: at most log2(steps/cadence) + 1 scans.
        assert col.scans <= 10

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CollapseConfig(cadence=0)
        with pytest.raises(ValueError):
            CollapseConfig(backoff=0)
        assert CollapseConfig().label == f"on(W={DEFAULT_CADENCE})"
        assert CollapseConfig(enabled=False).label == "off"
        assert CollapseConfig().backoff == CADENCE_BACKOFF


# --------------------------------------------------------------------------- #
# Coverage soundness
# --------------------------------------------------------------------------- #


class TestCoverage:
    def test_coverage_mask_exact(self):
        M = np.array([[0, 1, 1], [2, 2, 2]], dtype=np.int32)
        spec = np.array([[0, 1], [0, 1]], dtype=np.int32)
        cov = coverage_mask(M, spec, num_states=3)
        # Chunk 0's image {0, 1} is inside {0, 1}; chunk 1's image {2} is not.
        np.testing.assert_array_equal(cov, [True, False])

    def test_converged_requires_coverage(self):
        end = np.array([[4, 4, 4], [5, 5, 5]], dtype=np.int32)
        assert not converged_chunks(end, None).any()
        cov = np.array([True, False])
        np.testing.assert_array_equal(
            converged_chunks(end, cov), [True, False]
        )

    def test_converged_requires_constant_row(self):
        end = np.array([[4, 4, 3], [5, 5, 5]], dtype=np.int32)
        cov = np.array([True, True])
        np.testing.assert_array_equal(
            converged_chunks(end, cov), [False, True]
        )

    def test_converged_respects_valid_mask(self):
        end = np.array([[4, 4, 4]], dtype=np.int32)
        cov = np.array([True])
        valid = np.array([[True, True, False]])
        np.testing.assert_array_equal(
            converged_chunks(end, cov, valid), [False]
        )

    def test_speculate_coverage_marks_chunk0(self):
        dfa = make_random_dfa(12, 3, seed=0)
        inp = random_input(3, 30_000, seed=1)
        plan = plan_chunks(inp.size, 32)
        spec, covered = speculate(
            dfa, inp, plan, k=4, lookback=8, return_coverage=True
        )
        assert covered.shape == (32,)
        assert covered[0]  # chunk 0 starts from dfa.start — always covered
        # Soundness spot-check: for covered chunks the true incoming state
        # is genuinely among the speculated ones.
        ref_final = run_reference(dfa, inp)
        cur = dfa.start
        for c in range(plan.num_chunks):
            if covered[c]:
                assert cur in set(spec[c].tolist())
            lo, ln = int(plan.starts[c]), int(plan.lengths[c])
            for a in inp[lo : lo + ln]:
                cur = int(dfa.table[a, cur])
        assert cur == ref_final


# --------------------------------------------------------------------------- #
# Cadence probe + resolution
# --------------------------------------------------------------------------- #


class TestProbeAndResolve:
    def test_probe_none_on_permutation_machine(self):
        dfa, inputs = get_application("div7").build(40_000, seed=0)
        assert probe_cadence(dfa, inputs, k=8) is None

    @pytest.mark.parametrize("name", ["huffman", "html"])
    def test_probe_finds_cadence_on_converging_machines(self, name):
        dfa, inputs = get_application(name).build(40_000, seed=0)
        w = probe_cadence(dfa, inputs, k=8)
        assert isinstance(w, int) and 8 <= w <= 512

    def test_probe_trivial_inputs(self):
        dfa = make_random_dfa(6, 2, seed=0)
        assert probe_cadence(dfa, np.zeros(0, dtype=np.int32), k=8) is None
        assert probe_cadence(dfa, random_input(2, 100, seed=0), k=1) is None

    def test_resolve_modes(self):
        dfa, inputs = get_application("huffman").build(40_000, seed=0)
        assert resolve_collapse(None, dfa, inputs, k=8) is None
        assert resolve_collapse("off", dfa, inputs, k=8) is None
        on = resolve_collapse("on", dfa, inputs, k=8)
        assert on is not None and on.cadence == DEFAULT_CADENCE
        auto = resolve_collapse("auto", dfa, inputs, k=8)
        assert auto is not None and auto.enabled
        cfg = CollapseConfig(cadence=17)
        assert resolve_collapse(cfg, dfa, inputs, k=8) is cfg
        assert resolve_collapse(CollapseConfig(enabled=False), dfa, inputs, k=8) is None
        with pytest.raises(ValueError):
            resolve_collapse("bogus", dfa, inputs, k=8)

    def test_auto_disables_on_div7(self):
        dfa, inputs = get_application("div7").build(40_000, seed=0)
        assert resolve_collapse("auto", dfa, inputs, k=6) is None


# --------------------------------------------------------------------------- #
# Local-layer equivalence: process_chunks / kernels
# --------------------------------------------------------------------------- #


class TestLocalEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        num_chunks=st.integers(1, 40),
        length=st.integers(0, 3000),
        k=st.integers(1, 9),
        cadence=st.integers(1, 64),
    )
    def test_collapsed_equals_uncollapsed(
        self, seed, num_chunks, length, k, cadence
    ):
        """Includes empty inputs, chunks shorter than the cadence, ragged
        tails, and k larger than the state count (duplicate spec lanes)."""
        dfa = make_random_dfa(7, 3, seed=seed % 1000)
        inp = random_input(3, length, seed=seed % 997)
        plan = plan_chunks(inp.size, num_chunks)
        rng = np.random.default_rng(seed)
        spec = rng.integers(0, 7, size=(num_chunks, k)).astype(np.int32)
        base, _ = process_chunks(dfa, inp, plan, spec)
        cfg = CollapseConfig(cadence=cadence)
        stats = ExecStats()
        end, _ = process_chunks(dfa, inp, plan, spec, collapse=cfg, stats=stats)
        np.testing.assert_array_equal(end, base)
        # Modeled counter keeps lock-step semantics regardless of collapse.
        assert stats.local_transitions == int(plan.lengths.sum()) * k
        assert stats.local_gathers <= stats.local_transitions

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_every_kernel_collapsed_equals_uncollapsed(self, kernel):
        dfa = make_random_dfa(9, 6, seed=3)
        inp = random_input(6, 40_000, seed=4)
        plan = plan_chunks(inp.size, 24)
        rng = np.random.default_rng(5)
        spec = rng.integers(0, 9, size=(24, 5)).astype(np.int32)
        base, _ = process_chunks(dfa, inp, plan, spec)
        kplan = plan_kernel(
            dfa, chunk_len=plan.max_len, num_chunks=24, k=5, kernel=kernel
        )
        stats = ExecStats()
        end = process_chunks_kernel(
            dfa, inp, plan, spec, kplan,
            collapse=CollapseConfig(cadence=16), stats=stats,
        )
        np.testing.assert_array_equal(end, base)
        assert stats.local_transitions == int(plan.lengths.sum()) * 5
        assert stats.local_gathers <= stats.local_transitions

    def test_collapse_reduces_physical_gathers(self):
        dfa, inp = get_application("huffman").build(1 << 17, seed=0)
        plan = plan_chunks(inp.size, 64)
        spec = speculate(dfa, inp, plan, k=8, lookback=16)
        off, on = ExecStats(), ExecStats()
        base, _ = process_chunks(dfa, inp, plan, spec, stats=off)
        end, _ = process_chunks(
            dfa, inp, plan, spec, stats=on,
            collapse=CollapseConfig(cadence=16),
        )
        np.testing.assert_array_equal(end, base)
        assert on.local_transitions == off.local_transitions  # modeled
        assert on.local_gathers < off.local_gathers / 2  # physical
        assert on.collapse_scans > 0
        assert on.lanes_collapsed > 0

    def test_per_symbol_features_disable_collapse(self):
        dfa = make_random_dfa(6, 2, seed=9)
        inp = random_input(2, 5_000, seed=9)
        plan = plan_chunks(inp.size, 8)
        spec = np.zeros((8, 3), dtype=np.int32)
        stats = ExecStats()
        end, acc = process_chunks(
            dfa, inp, plan, spec, collapse=CollapseConfig(cadence=4),
            count_accepting=True, stats=stats,
        )
        assert acc is not None
        assert stats.collapse_scans == 0  # silently full-width


# --------------------------------------------------------------------------- #
# Engine-level equivalence
# --------------------------------------------------------------------------- #


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    @pytest.mark.parametrize("merge", ["sequential", "parallel"])
    def test_apps_match_reference_and_off(self, name, merge):
        app = get_application(name)
        dfa, inputs = app.build(60_000, seed=11)
        ref = run_reference(dfa, inputs)
        kw = dict(
            k=8, num_blocks=2, threads_per_block=32, merge=merge,
            lookback=app.default_lookback, price=False,
        )
        base = run_speculative(dfa, inputs, collapse="off", **kw)
        assert base.final_state == ref
        for mode in ("on", "auto"):
            r = run_speculative(dfa, inputs, collapse=mode, **kw)
            assert r.final_state == ref
            if base.true_starts is not None and r.true_starts is not None:
                np.testing.assert_array_equal(r.true_starts, base.true_starts)

    @pytest.mark.parametrize("reexec", ["delayed", "eager"])
    def test_reexec_modes(self, reexec):
        dfa = make_random_dfa(20, 4, seed=21)
        inputs = random_input(4, 50_000, seed=22)
        ref = run_reference(dfa, inputs)
        for mode in ("off", "on"):
            r = run_speculative(
                dfa, inputs, k=3, num_blocks=2, threads_per_block=32,
                merge="parallel", reexec=reexec, lookback=4,
                collapse=mode, price=False,
            )
            assert r.final_state == ref

    @pytest.mark.parametrize("kernel", ["auto"] + sorted(KERNELS))
    def test_kernels_under_collapse(self, kernel):
        dfa = make_random_dfa(8, 5, seed=31)
        inputs = random_input(5, 40_000, seed=32)
        ref = run_reference(dfa, inputs)
        r = run_speculative(
            dfa, inputs, k=4, num_blocks=1, threads_per_block=32,
            lookback=8, kernel=kernel, collapse="on", price=False,
        )
        assert r.final_state == ref

    def test_k_wider_than_state_space(self):
        dfa = make_random_dfa(5, 3, seed=41)
        inputs = random_input(3, 20_000, seed=42)
        r = run_speculative(
            dfa, inputs, k=16, num_blocks=1, threads_per_block=32,
            collapse="on", price=False,
        )
        assert r.final_state == run_reference(dfa, inputs)

    def test_empty_and_tiny_inputs(self):
        dfa = make_random_dfa(6, 2, seed=51)
        for n in (0, 1, 7):
            inputs = random_input(2, n, seed=n)
            r = run_speculative(
                dfa, inputs, k=4, num_blocks=1, threads_per_block=32,
                collapse="on", price=False,
            )
            assert r.final_state == run_reference(dfa, inputs)

    def test_converged_chunks_skip_all_checks(self):
        """Acceptance criterion: a fully converged run is charged zero
        merge check comparisons and zero re-executions."""
        dfa, inputs = get_application("huffman").build(1 << 19, seed=6)
        ref = run_reference(dfa, inputs)
        for merge in ("sequential", "parallel"):
            r = run_speculative(
                dfa, inputs, k=8, num_blocks=2, threads_per_block=64,
                merge=merge, lookback=16, collapse="on", price=False,
                keep_merge_tree=True,
            )
            assert r.final_state == ref
            s = r.stats
            assert s.chunks_converged == s.num_chunks
            assert s.checks_skipped > 0
            assert s.check_comparisons == 0
            assert s.reexec_chunks_seq == 0
            assert s.reexec_chunks_eager == 0 and s.fixup_chunks == 0
            if merge == "parallel" and r.merge_tree is not None:
                assert not r.merge_tree.reexecuted

    def test_modeled_counters_lockstep_invariant(self):
        dfa, inputs = get_application("huffman").build(1 << 18, seed=7)
        kw = dict(
            k=8, num_blocks=2, threads_per_block=64, lookback=16, price=False
        )
        off = run_speculative(dfa, inputs, collapse="off", **kw).stats
        on = run_speculative(dfa, inputs, collapse="on", **kw).stats
        assert on.local_transitions == off.local_transitions
        assert on.local_input_reads == off.local_input_reads
        assert on.local_gathers < off.local_gathers
        assert on.chunks_converged > 0

    def test_spec_counters_reach_trace(self):
        from repro.obs.trace import RunTrace

        dfa, inputs = get_application("huffman").build(1 << 17, seed=8)
        t = RunTrace("collapse")
        run_speculative(
            dfa, inputs, k=8, num_blocks=1, threads_per_block=64,
            lookback=16, collapse="on", price=False, trace=t,
        )
        counters = t.counters
        assert counters["spec.collapse_scans"].value > 0
        assert counters["spec.lanes_collapsed"].value > 0
        assert counters["spec.chunks_converged"].value > 0
        assert counters["spec.checks_skipped"].value > 0

    def test_engine_config_label(self):
        dfa, inputs = get_application("huffman").build(1 << 15, seed=9)
        r = run_speculative(
            dfa, inputs, k=8, num_blocks=1, threads_per_block=32,
            lookback=16, collapse="on", price=False,
        )
        assert r.config.collapse == f"on(W={DEFAULT_CADENCE})"
        r = run_speculative(
            dfa, inputs, k=8, num_blocks=1, threads_per_block=32,
            lookback=16, collapse="off", price=False,
        )
        assert r.config.collapse == "off"


# --------------------------------------------------------------------------- #
# Scale-out pool + streaming
# --------------------------------------------------------------------------- #


class TestScaleout:
    @pytest.mark.parametrize("mode", ["off", "on", "auto"])
    def test_pool_exactness(self, mode):
        dfa, inputs = get_application("huffman").build(1 << 17, seed=12)
        ref = run_reference(dfa, inputs)
        with ScaleoutPool(
            dfa, num_workers=2, k=8, lookback=16, sub_chunks_per_worker=16,
            collapse=mode,
        ) as pool:
            res = pool.run(inputs)
        assert res.final_state == ref
        if mode != "off":
            assert res.stats.chunks_converged > 0
            assert res.stats.checks_skipped > 0

    def test_pool_random_dfa_equivalence(self):
        dfa = make_random_dfa(11, 4, seed=13)
        inputs = random_input(4, 50_000, seed=14)
        ref = run_reference(dfa, inputs)
        for mode in ("off", "auto"):
            with ScaleoutPool(
                dfa, num_workers=3, k=4, sub_chunks_per_worker=8,
                collapse=mode,
            ) as pool:
                assert pool.run(inputs).final_state == ref

    def test_worker_kill_mid_collapse_recovers_exactly(self):
        """Chaos criterion: a worker killed mid-collapse is respawned and
        rebuilds its collapse state deterministically from the task tuple —
        the retried run is exact, with convergence still detected."""
        dfa, inputs = get_application("huffman").build(1 << 17, seed=15)
        ref = run_reference(dfa, inputs)
        plan = fi.FaultPlan([fi.kill_worker(0, at_task=0)])
        with ScaleoutPool(
            dfa, num_workers=2, k=8, lookback=16, sub_chunks_per_worker=16,
            collapse="on", fault_plan=plan,
        ) as pool:
            res = pool.run(inputs)
            assert res.final_state == ref
            assert res.recovery is not None
            assert res.recovery.worker_deaths == 1
            assert res.stats.chunks_converged > 0
            # Subsequent clean runs keep collapsing.
            clean = pool.run(inputs)
            assert clean.final_state == ref
            assert clean.recovery is None
            assert clean.stats.chunks_converged > 0

    def test_streaming_simulate_collapse(self):
        dfa, inputs = get_application("huffman").build(1 << 17, seed=16)
        ref = run_reference(dfa, inputs)
        finals = {}
        for mode in ("off", "auto"):
            ex = StreamingExecutor(
                dfa=dfa, k=8, num_blocks=2, threads_per_block=64,
                lookback=16, collapse=mode,
            )
            for block in np.array_split(inputs, 4):
                ex.feed(block)
            finals[mode] = ex.state
        assert finals["off"] == finals["auto"] == ref

    def test_streaming_pool_collapse(self):
        dfa, inputs = get_application("huffman").build(1 << 16, seed=17)
        ref = run_reference(dfa, inputs)
        with StreamingExecutor(
            dfa=dfa, k=8, lookback=16, backend="pool", pool_workers=2,
            collapse="auto",
        ) as ex:
            for block in np.array_split(inputs, 3):
                ex.feed(block)
            assert ex.state == ref
            assert ex.stats.chunks_converged > 0


# --------------------------------------------------------------------------- #
# Measured autotuner
# --------------------------------------------------------------------------- #


class TestChooseCollapse:
    def test_choose_collapse_on_convergent_machine(self):
        dfa, inputs = get_application("huffman").build(1 << 17, seed=18)
        choice = choose_collapse(
            dfa, inputs, num_chunks=64, k=8, lookback=16,
            probe_items=1 << 15, repeats=2, cadences=(16, 64),
        )
        assert set(choice.measured_s) == {"off", "on(W=16)", "on(W=64)"}
        assert all(v > 0 for v in choice.measured_s.values())
        assert choice.label in choice.measured_s
        assert choice.speedup_vs_off > 0

    def test_choose_collapse_runs_on_div7(self):
        dfa, inputs = get_application("div7").build(1 << 16, seed=19)
        choice = choose_collapse(
            dfa, inputs, num_chunks=32, k=6, lookback=0,
            probe_items=1 << 14, repeats=1, cadences=(32,),
        )
        assert "off" in choice.measured_s
        assert choice.probe_cadence is None
