"""Tests for the streaming executor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.streaming import FeedCursor, StreamingExecutor
from repro.fsm.run import run_reference, run_reference_trace
from tests.conftest import make_random_dfa, random_input


class TestStreaming:
    def test_blocks_equal_one_shot(self):
        dfa = make_random_dfa(6, 3, seed=0)
        stream = random_input(3, 30_000, seed=1)
        ex = StreamingExecutor(dfa, k=2, num_blocks=1, threads_per_block=64)
        for block in np.array_split(stream, 7):
            ex.feed(block)
        assert ex.state == run_reference(dfa, stream)
        assert ex.items_consumed == 30_000
        assert ex.blocks_consumed == 7

    def test_empty_block_noop(self):
        dfa = make_random_dfa(4, 2, seed=1)
        ex = StreamingExecutor(dfa, num_blocks=1, threads_per_block=32)
        s = ex.feed(np.zeros(0, dtype=np.int32))
        assert s == dfa.start
        assert ex.blocks_consumed == 0

    def test_irregular_block_sizes(self):
        dfa = make_random_dfa(5, 2, seed=2)
        stream = random_input(2, 5000, seed=3)
        ex = StreamingExecutor(dfa, k=1, num_blocks=1, threads_per_block=32)
        offsets = [0, 17, 17 + 2048, 17 + 2048 + 1, 5000]
        for lo, hi in zip(offsets, offsets[1:]):
            ex.feed(stream[lo:hi])
        assert ex.state == run_reference(dfa, stream)

    def test_match_positions_global_offsets(self):
        dfa = make_random_dfa(5, 2, seed=4, accepting_fraction=0.4)
        stream = random_input(2, 8000, seed=5)
        ex = StreamingExecutor(
            dfa, k=2, num_blocks=1, threads_per_block=32, collect_matches=True
        )
        for block in np.array_split(stream, 5):
            ex.feed(block)
        trace = run_reference_trace(dfa, stream)
        want = np.flatnonzero(dfa.accepting[trace])
        np.testing.assert_array_equal(ex.match_positions, want)

    def test_accepted_property(self):
        from repro.apps.div import div7_dfa

        dfa = div7_dfa()
        ex = StreamingExecutor(dfa, k=None, num_blocks=1, threads_per_block=32)
        ex.feed(np.array([1, 1, 1, 0], dtype=np.int32))  # 14: divisible by 7
        assert ex.accepted
        ex.feed(np.array([1], dtype=np.int32))  # 29: not divisible
        assert not ex.accepted

    def test_stats_accumulate(self):
        dfa = make_random_dfa(5, 2, seed=6)
        ex = StreamingExecutor(dfa, k=2, num_blocks=1, threads_per_block=32)
        ex.feed(random_input(2, 1000, seed=7))
        first = ex.stats.local_transitions
        ex.feed(random_input(2, 1000, seed=8))
        assert ex.stats.local_transitions == 2 * first
        assert ex.stats.num_items == 2000

    def test_reset(self):
        dfa = make_random_dfa(5, 2, seed=6)
        ex = StreamingExecutor(dfa, k=2, num_blocks=1, threads_per_block=32,
                               collect_matches=True)
        ex.feed(random_input(2, 500, seed=9))
        ex.reset()
        assert ex.state == dfa.start
        assert ex.items_consumed == 0
        assert ex.match_positions.size == 0
        assert ex.stats.num_items == 0

    def test_match_positions_across_many_feeds_multiblock(self):
        # Offsets must stay global when blocks are irregular and the
        # simulated grid spans several blocks of threads.
        dfa = make_random_dfa(6, 2, seed=10, accepting_fraction=0.3)
        stream = random_input(2, 9_000, seed=11)
        ex = StreamingExecutor(
            dfa, k=2, num_blocks=4, threads_per_block=32, collect_matches=True
        )
        offsets = [0, 3, 1_000, 1_001, 4_096, 9_000]
        for lo, hi in zip(offsets, offsets[1:]):
            ex.feed(stream[lo:hi])
        trace = run_reference_trace(dfa, stream)
        want = np.flatnonzero(dfa.accepting[trace])
        np.testing.assert_array_equal(ex.match_positions, want)
        # feeding more keeps extending with global offsets, not restarting
        tail = random_input(2, 500, seed=12)
        ex.feed(tail)
        full = np.concatenate([stream, tail])
        trace = run_reference_trace(dfa, full)
        np.testing.assert_array_equal(
            ex.match_positions, np.flatnonzero(dfa.accepting[trace])
        )

    def test_reset_restores_fresh_session(self):
        # After reset, a refeed must behave exactly like a new executor:
        # same states, same matches, same counters.
        dfa = make_random_dfa(6, 2, seed=13, accepting_fraction=0.3)
        stream = random_input(2, 4_000, seed=14)
        ex = StreamingExecutor(dfa, k=2, num_blocks=1, threads_per_block=32,
                               collect_matches=True)
        for block in np.array_split(stream, 3):
            ex.feed(block)
        first_matches = ex.match_positions.copy()
        first_state = ex.state
        first_transitions = ex.stats.local_transitions
        ex.reset()
        assert ex.state == dfa.start
        assert ex.items_consumed == 0
        assert ex.blocks_consumed == 0
        assert ex.match_positions.size == 0
        assert ex.stats.num_items == 0
        assert ex.stats.local_transitions == 0
        for block in np.array_split(stream, 3):
            ex.feed(block)
        np.testing.assert_array_equal(ex.match_positions, first_matches)
        assert ex.state == first_state
        assert ex.stats.local_transitions == first_transitions

    def test_utf8_streaming_session(self):
        # realistic: validate a UTF-8 stream arriving in blocks that split
        # multi-byte sequences
        from repro.apps.utf8 import encode_utf8_workload, utf8_validator_dfa

        dfa = utf8_validator_dfa()
        stream = encode_utf8_workload(20_000, rng=3)
        ex = StreamingExecutor(dfa, k=2, num_blocks=1, threads_per_block=64,
                               lookback=4)
        for block in np.array_split(stream, 13):
            ex.feed(block)
        assert ex.accepted
        assert ex.state == run_reference(dfa, stream)


class TestPoolBackend:
    def test_blocks_equal_one_shot(self):
        dfa = make_random_dfa(6, 3, seed=0)
        stream = random_input(3, 20_000, seed=1)
        with StreamingExecutor(dfa, k=2, backend="pool", pool_workers=2,
                               sub_chunks_per_worker=8) as ex:
            for block in np.array_split(stream, 5):
                ex.feed(block)
            assert ex.state == run_reference(dfa, stream)
            assert ex.blocks_consumed == 5
            assert ex.stats.pool_calls == 5
            assert ex.stats.num_items == 20_000
            assert ex.stats.pool_shm_bytes > 0

    def test_pool_persists_across_feeds_and_reset(self):
        dfa = make_random_dfa(5, 2, seed=2)
        stream = random_input(2, 6_000, seed=3)
        with StreamingExecutor(dfa, k=None, backend="pool", pool_workers=2,
                               sub_chunks_per_worker=8) as ex:
            pool = ex._pool
            ex.feed(stream)
            ex.reset()
            assert ex._pool is pool and not pool.closed
            assert ex.stats.num_items == 0
            ex.feed(stream)
            assert ex.state == run_reference(dfa, stream)
        assert pool.closed

    def test_pool_collect_matches(self):
        """The pool recovers match positions with a second worker round;
        the stream sees them at global offsets, same as the simulator."""
        dfa = make_random_dfa(5, 2, seed=4, accepting_fraction=0.4)
        stream = random_input(2, 12_000, seed=5)
        trace = run_reference_trace(dfa, stream)
        want = np.flatnonzero(dfa.accepting[trace])
        with StreamingExecutor(dfa, k=2, backend="pool", pool_workers=2,
                               sub_chunks_per_worker=8,
                               collect_matches=True) as ex:
            for block in np.array_split(stream, 5):
                ex.feed(block)
            np.testing.assert_array_equal(ex.match_positions, want)

    def test_bad_backend_name(self):
        dfa = make_random_dfa(4, 2, seed=0)
        with pytest.raises(ValueError):
            StreamingExecutor(dfa, backend="cuda")

    def test_bad_schedule_name(self):
        dfa = make_random_dfa(4, 2, seed=0)
        with pytest.raises(ValueError):
            StreamingExecutor(dfa, schedule="barrier-free")

    @pytest.mark.parametrize("backend", ["simulate", "pool"])
    def test_ooo_schedule_equals_barrier(self, backend):
        dfa = make_random_dfa(6, 3, seed=40, accepting_fraction=0.3)
        stream = random_input(3, 15_000, seed=41)
        finals, matches = [], []
        for schedule in ("barrier", "ooo"):
            with StreamingExecutor(dfa, k=2, num_blocks=2,
                                   threads_per_block=32, backend=backend,
                                   pool_workers=2, sub_chunks_per_worker=8,
                                   collect_matches=True,
                                   schedule=schedule) as ex:
                for block in np.array_split(stream, 4):
                    ex.feed(block)
                finals.append(ex.state)
                matches.append(ex.match_positions)
        assert finals[0] == finals[1] == run_reference(dfa, stream)
        np.testing.assert_array_equal(matches[0], matches[1])


class TestLifetimeStats:
    def test_lifetime_survives_reset(self):
        dfa = make_random_dfa(6, 2, seed=20)
        stream = random_input(2, 12_000, seed=21)
        ex = StreamingExecutor(dfa, k=2, num_blocks=1, threads_per_block=64)
        for block in np.array_split(stream, 3):
            ex.feed(block)
        session_items = ex.stats.num_items
        assert session_items == 12_000
        ex.reset()
        # Session counters clear, lifetime counters do not.
        assert ex.stats.num_items == 0
        assert ex.lifetime_stats.num_items == session_items
        assert ex.lifetime_items_consumed == 12_000
        assert ex.lifetime_blocks_consumed == 3

    def test_lifetime_accumulates_across_sessions(self):
        dfa = make_random_dfa(5, 2, seed=22)
        a = random_input(2, 4_000, seed=23)
        b = random_input(2, 6_000, seed=24)
        ex = StreamingExecutor(dfa, k=2, num_blocks=1, threads_per_block=64)
        ex.feed(a)
        ex.reset()
        ex.feed(b)
        # Mid-session: lifetime = folded past sessions + live session.
        assert ex.lifetime_items_consumed == 10_000
        assert ex.lifetime_stats.num_items == 10_000
        assert ex.lifetime_blocks_consumed == 2
        assert ex.stats.num_items == 6_000

    def test_last_feed_stats_per_block(self):
        dfa = make_random_dfa(6, 2, seed=25)
        ex = StreamingExecutor(dfa, k=2, num_blocks=1, threads_per_block=64)
        assert ex.last_feed_stats is None
        ex.feed(random_input(2, 3_000, seed=26))
        first = ex.last_feed_stats
        assert first is not None
        assert first.num_items == 3_000
        ex.feed(random_input(2, 5_000, seed=27))
        second = ex.last_feed_stats
        assert second.num_items == 5_000
        # Session stats keep the running total; last_feed is per-block.
        assert ex.stats.num_items == 8_000


class TestFeedCursor:
    def test_checkpoint_restore_round_trip(self):
        dfa = make_random_dfa(6, 3, seed=30)
        stream = random_input(3, 12_000, seed=31)
        ex = StreamingExecutor(dfa, k=2, num_blocks=1, threads_per_block=64)
        blocks = np.array_split(stream, 4)
        ex.feed(blocks[0])
        cur = ex.checkpoint()
        assert cur == FeedCursor(state=ex.state, items_consumed=blocks[0].size,
                                 blocks_consumed=1)
        ex.feed(blocks[1])
        ex.restore(cur)
        assert (ex.state, ex.items_consumed, ex.blocks_consumed) == (
            cur.state, cur.items_consumed, cur.blocks_consumed
        )
        # Resuming from the cursor replays the stream to the right answer.
        for block in blocks[1:]:
            ex.feed(block)
        assert ex.state == run_reference(dfa, stream)

    def test_failed_feed_leaves_cursor_untouched(self):
        """A feed that raises consumes nothing: same state, counters, and
        matches as before — the caller just re-feeds the block."""
        dfa = make_random_dfa(6, 3, seed=32)
        stream = random_input(3, 12_000, seed=33)
        with StreamingExecutor(dfa, k=2, backend="pool", pool_workers=2,
                               sub_chunks_per_worker=8) as ex:
            blocks = np.array_split(stream, 3)
            ex.feed(blocks[0])
            before = ex.checkpoint()
            before_items = ex.stats.num_items
            ex._pool.close()  # force the next feed to fail mid-stream
            with pytest.raises(Exception):
                ex.feed(blocks[1])
            assert ex.checkpoint() == before
            assert ex.stats.num_items == before_items
            assert ex.last_feed_degraded is False

    def test_bad_block_does_not_consume(self):
        dfa = make_random_dfa(6, 3, seed=34)
        ex = StreamingExecutor(dfa, k=2, backend="pool", pool_workers=2,
                               sub_chunks_per_worker=8)
        try:
            ex.feed(random_input(3, 4_000, seed=35))
            before = ex.checkpoint()
            with pytest.raises(ValueError):
                ex.feed(np.zeros((2, 2), dtype=np.int32))  # not 1-D
            assert ex.checkpoint() == before
        finally:
            ex.close()


class TestFeedRegressions:
    """Regression tests for streaming correctness fixes."""

    def test_restore_truncates_rewound_matches(self):
        # Matches recorded by feeds past the cursor must vanish on restore,
        # or re-fed blocks would report them twice.
        dfa = make_random_dfa(5, 2, seed=50, accepting_fraction=0.4)
        stream = random_input(2, 8_000, seed=51)
        blocks = np.array_split(stream, 4)
        ex = StreamingExecutor(dfa, k=2, num_blocks=1, threads_per_block=32,
                               collect_matches=True)
        ex.feed(blocks[0])
        cur = ex.checkpoint()
        kept = ex.match_positions.copy()
        ex.feed(blocks[1])
        ex.feed(blocks[2])
        ex.restore(cur)
        np.testing.assert_array_equal(ex.match_positions, kept)
        # Replaying from the cursor yields exactly the straight-run matches.
        for block in blocks[1:]:
            ex.feed(block)
        trace = run_reference_trace(dfa, stream)
        want = np.flatnonzero(dfa.accepting[trace])
        np.testing.assert_array_equal(ex.match_positions, want)

    def test_feed_does_not_mutate_callers_stats(self):
        # last_feed_stats is a per-block copy: committing num_items must not
        # write through to the stats object the engine result owns.
        dfa = make_random_dfa(5, 2, seed=52)
        ex = StreamingExecutor(dfa, k=2, num_blocks=1, threads_per_block=32)
        ex.feed(random_input(2, 3_000, seed=53))
        first = ex.last_feed_stats
        assert first.num_items == 3_000
        ex.feed(random_input(2, 1_000, seed=54))
        # The first feed's snapshot is frozen, not aliased to live state.
        assert first.num_items == 3_000
        assert ex.last_feed_stats.num_items == 1_000

    def test_empty_block_clears_degraded_flag(self):
        dfa = make_random_dfa(4, 2, seed=55)
        ex = StreamingExecutor(dfa, num_blocks=1, threads_per_block=32)
        ex.last_feed_degraded = True  # as if the previous feed degraded
        state = ex.feed(np.zeros(0, dtype=np.int32))
        assert state == dfa.start
        assert ex.last_feed_degraded is False


class TestCheckpointRestoreProperty:
    """Property test: any checkpoint/restore/replay interleaving is
    invisible — state and collected matches equal the straight run."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_round_trip_with_matches(self, data):
        seed = data.draw(st.integers(0, 1_000), label="seed")
        n = data.draw(st.integers(1, 4_000), label="n")
        n_blocks = data.draw(st.integers(1, 6), label="blocks")
        rewinds = data.draw(st.integers(1, 3), label="rewinds")
        dfa = make_random_dfa(
            data.draw(st.integers(2, 8), label="states"), 3, seed=seed,
            accepting_fraction=0.4,
        )
        stream = random_input(3, n, seed=seed + 1)
        blocks = np.array_split(stream, n_blocks)

        straight = StreamingExecutor(dfa, k=2, num_blocks=1,
                                     threads_per_block=32,
                                     collect_matches=True)
        for b in blocks:
            straight.feed(b)

        ex = StreamingExecutor(dfa, k=2, num_blocks=1, threads_per_block=32,
                               collect_matches=True)
        i = 0
        while i < len(blocks):
            cur = ex.checkpoint()
            ahead = data.draw(
                st.integers(1, len(blocks) - i), label=f"ahead@{i}")
            for b in blocks[i:i + ahead]:
                ex.feed(b)
            if rewinds > 0 and data.draw(st.booleans(), label=f"rewind@{i}"):
                rewinds -= 1
                ex.restore(cur)  # throw the work away and redo it
                for b in blocks[i:i + ahead]:
                    ex.feed(b)
            i += ahead

        assert ex.state == straight.state
        assert ex.items_consumed == straight.items_consumed
        np.testing.assert_array_equal(ex.match_positions,
                                      straight.match_positions)
