"""Failure injection: corrupted inputs and adversarial shapes.

DESIGN.md §7: the merge must stay correct under corrupted speculation sets,
duplicate speculation entries, poisoned validity bits, hash collisions,
ragged chunking extremes, and degenerate machines.
"""

import numpy as np

import repro
from repro.core.local import process_chunks
from repro.core.merge_par import merge_parallel
from repro.core.merge_seq import merge_sequential
from repro.core.types import ChunkResults
from repro.fsm.dfa import DFA
from repro.fsm.run import run_reference
from repro.workloads.chunking import plan_chunks
from tests.conftest import make_random_dfa, random_input


def results_from_spec(dfa, inp, chunks, spec):
    plan = plan_chunks(inp.size, chunks)
    end, _ = process_chunks(dfa, inp, plan, spec)
    return plan, ChunkResults(spec=spec, end=end, valid=np.ones_like(spec, dtype=bool))


class TestCorruptedSpeculation:
    def test_duplicate_spec_entries(self):
        # duplicate states within a row: merge still correct (first match wins)
        dfa = make_random_dfa(6, 2, seed=0)
        inp = random_input(2, 300, seed=1)
        spec = np.full((4, 3), 2, dtype=np.int32)  # all duplicates
        spec[0, 0] = dfa.start
        plan, results = results_from_spec(dfa, inp, 4, spec)
        for merge, kwargs in (
            (merge_sequential, {}),
            (merge_parallel, {"reexec": "delayed"}),
            (merge_parallel, {"reexec": "eager"}),
        ):
            out = merge(dfa, inp, plan, results, stats=None, **kwargs)
            final = out[0]
            assert final == run_reference(dfa, inp)

    def test_spec_missing_true_start(self):
        # chunk 0's row lacks the machine start: everything recovers via
        # re-execution / fix-up
        dfa = make_random_dfa(6, 2, seed=2)
        inp = random_input(2, 200, seed=3)
        wrong = (dfa.start + 1) % 6
        spec = np.full((4, 2), wrong, dtype=np.int32)
        spec[:, 1] = (wrong + 1) % 6
        plan, results = results_from_spec(dfa, inp, 4, spec)
        f_seq, _ = merge_sequential(dfa, inp, plan, results, stats=None)
        f_par, _ = merge_parallel(dfa, inp, plan, results, stats=None)
        assert f_seq == f_par == run_reference(dfa, inp)

    def test_all_validity_poisoned(self):
        # every entry marked invalid: delayed fix-up degenerates to a full
        # sequential re-execution but stays correct
        dfa = make_random_dfa(5, 2, seed=4)
        inp = random_input(2, 150, seed=5)
        plan = plan_chunks(inp.size, 3)
        spec = np.zeros((3, 2), dtype=np.int32)
        spec[:, 1] = 1
        end, _ = process_chunks(dfa, inp, plan, spec)
        results = ChunkResults(spec=spec, end=end,
                               valid=np.zeros_like(spec, dtype=bool))
        final, _ = merge_parallel(dfa, inp, plan, results, stats=None)
        assert final == run_reference(dfa, inp)

    def test_partially_poisoned_validity(self):
        dfa = make_random_dfa(7, 2, seed=6)
        inp = random_input(2, 280, seed=7)
        plan = plan_chunks(inp.size, 8)
        rng = np.random.default_rng(0)
        spec = np.stack([rng.permutation(7)[:3] for _ in range(8)]).astype(np.int32)
        spec[0, 0] = dfa.start
        end, _ = process_chunks(dfa, inp, plan, spec)
        valid = rng.random((8, 3)) > 0.4
        results = ChunkResults(spec=spec, end=end, valid=valid)
        f_seq, _ = merge_sequential(dfa, inp, plan, results, stats=None)
        f_par, _ = merge_parallel(dfa, inp, plan, results, stats=None)
        assert f_seq == f_par == run_reference(dfa, inp)


class TestHashCollisions:
    def test_states_congruent_mod_hash_size(self):
        # states chosen to collide in the hash check's buckets
        from repro.core.checks import DEFAULT_HASH_SIZE

        n_states = DEFAULT_HASH_SIZE * 3
        dfa = make_random_dfa(n_states, 2, seed=8)
        inp = random_input(2, 400, seed=9)
        # spec rows: states 0, 16, 32 — all hash to bucket 0
        spec = np.tile(
            np.arange(0, n_states, DEFAULT_HASH_SIZE, dtype=np.int32), (4, 1)
        )
        spec[0, 0] = dfa.start if dfa.start % DEFAULT_HASH_SIZE == 0 else spec[0, 0]
        plan, results = results_from_spec(dfa, inp, 4, spec)
        f_nested, _ = merge_sequential(dfa, inp, plan, results, check="nested",
                                       stats=None)
        f_hash, _ = merge_sequential(dfa, inp, plan, results, check="hash",
                                     stats=None)
        assert f_nested == f_hash == run_reference(dfa, inp)


class TestDegenerateShapes:
    def test_one_state_machine(self):
        dfa = DFA(table=np.zeros((2, 1), dtype=np.int32), start=0,
                  accepting=np.array([True]))
        inp = random_input(2, 100, seed=0)
        r = repro.run_speculative(dfa, inp, k=1, num_blocks=1,
                                  threads_per_block=32, price=False)
        assert r.final_state == 0
        assert r.success_rate == 1.0

    def test_single_item_input(self):
        dfa = make_random_dfa(4, 2, seed=1)
        inp = np.array([1], dtype=np.int32)
        r = repro.run_speculative(dfa, inp, k=2, num_blocks=1,
                                  threads_per_block=32, price=False)
        assert r.final_state == run_reference(dfa, inp)

    def test_input_length_equals_chunks(self):
        dfa = make_random_dfa(4, 2, seed=2)
        inp = random_input(2, 32, seed=3)
        r = repro.run_speculative(dfa, inp, k=2, num_blocks=1,
                                  threads_per_block=32, price=False)
        assert r.final_state == run_reference(dfa, inp)

    def test_identity_machine_rows(self):
        # a machine where some symbol is the identity on all states
        table = np.stack([np.arange(5), np.roll(np.arange(5), 1)]).astype(np.int32)
        dfa = DFA(table=table, start=0, accepting=np.zeros(5, dtype=bool))
        inp = random_input(2, 500, seed=4)
        r = repro.run_speculative(dfa, inp, k=3, num_blocks=2,
                                  threads_per_block=32, price=False)
        assert r.final_state == run_reference(dfa, inp)

    def test_absorbing_machine(self):
        # everything maps to state 0 after one step
        table = np.zeros((2, 6), dtype=np.int32)
        dfa = DFA(table=table, start=3, accepting=np.zeros(6, dtype=bool))
        inp = random_input(2, 100, seed=5)
        r = repro.run_speculative(dfa, inp, k=1, num_blocks=1,
                                  threads_per_block=32, lookback=1, price=False)
        assert r.final_state == 0
        assert r.success_rate == 1.0  # convergence makes speculation trivial
