"""Tests for the engine's API surface and configuration handling."""

import numpy as np
import pytest

import repro
from repro.fsm.run import run_reference
from repro.gpu.device import GTX_1080TI
from tests.conftest import make_random_dfa, random_input


@pytest.fixture
def small_case():
    dfa = make_random_dfa(6, 3, seed=11)
    inp = random_input(3, 500, seed=12)
    return dfa, inp


class TestValidation:
    def test_bad_merge(self, small_case):
        dfa, inp = small_case
        with pytest.raises(ValueError, match="merge"):
            repro.run_speculative(dfa, inp, merge="treeish")

    def test_bad_check(self, small_case):
        dfa, inp = small_case
        with pytest.raises(ValueError, match="check"):
            repro.run_speculative(dfa, inp, check="bloom")

    def test_bad_layout(self, small_case):
        dfa, inp = small_case
        with pytest.raises(ValueError, match="layout"):
            repro.run_speculative(dfa, inp, layout="blocked")

    def test_bad_collect(self, small_case):
        dfa, inp = small_case
        with pytest.raises(ValueError, match="collect"):
            repro.run_speculative(dfa, inp, collect=("everything",))

    def test_bad_backend(self, small_case):
        dfa, inp = small_case
        with pytest.raises(ValueError, match="backend"):
            repro.run_speculative(dfa, inp, backend="cuda")

    def test_bad_k(self, small_case):
        dfa, inp = small_case
        with pytest.raises(ValueError, match="k"):
            repro.run_speculative(dfa, inp, k=0)

    def test_2d_input(self, small_case):
        dfa, _ = small_case
        with pytest.raises(ValueError, match="1-D"):
            repro.run_speculative(dfa, np.zeros((2, 2), dtype=np.int32))

    def test_bad_threads_per_block(self, small_case):
        dfa, inp = small_case
        with pytest.raises(ValueError, match="warp"):
            repro.run_speculative(dfa, inp, threads_per_block=50)

    def test_bad_num_blocks(self, small_case):
        dfa, inp = small_case
        with pytest.raises(ValueError, match="num_blocks"):
            repro.run_speculative(dfa, inp, num_blocks=0)


class TestConfig:
    def test_k_clamped_to_num_states(self, small_case):
        dfa, inp = small_case
        r = repro.run_speculative(dfa, inp, k=99, num_blocks=1,
                                  threads_per_block=32, price=False)
        assert r.config.k == dfa.num_states
        assert r.config.enumerative

    def test_spec_n_via_none(self, small_case):
        dfa, inp = small_case
        r = repro.run_speculative(dfa, inp, k=None, num_blocks=1,
                                  threads_per_block=32, price=False)
        assert r.config.enumerative

    def test_num_threads(self, small_case):
        dfa, inp = small_case
        r = repro.run_speculative(dfa, inp, num_blocks=2, threads_per_block=64,
                                  price=False)
        assert r.config.num_threads == 128
        assert r.stats.num_chunks == 128

    def test_alternate_device(self, small_case):
        dfa, inp = small_case
        r = repro.run_speculative(dfa, inp, num_blocks=2, threads_per_block=32,
                                  device=GTX_1080TI)
        assert r.config.device.name == "GTX 1080 Ti"
        assert r.timing is not None

    def test_stats_echo_config(self, small_case):
        dfa, inp = small_case
        r = repro.run_speculative(dfa, inp, k=3, num_blocks=1,
                                  threads_per_block=32, price=False)
        s = r.stats
        assert (s.num_items, s.k, s.num_states, s.num_inputs) == (
            inp.size, 3, dfa.num_states, dfa.num_inputs
        )


class TestOutputs:
    def test_timing_attached_by_default(self, small_case):
        dfa, inp = small_case
        r = repro.run_speculative(dfa, inp, num_blocks=1, threads_per_block=32)
        assert r.timing is not None
        assert r.timing.total_s > 0
        assert r.timing.speedup > 0

    def test_price_false_skips_timing(self, small_case):
        dfa, inp = small_case
        r = repro.run_speculative(dfa, inp, num_blocks=1, threads_per_block=32,
                                  price=False)
        assert r.timing is None

    def test_cpu_ns_override_scales_cpu_time(self, small_case):
        dfa, inp = small_case
        r1 = repro.run_speculative(dfa, inp, num_blocks=1, threads_per_block=32,
                                   cpu_transition_ns=2.0)
        r2 = repro.run_speculative(dfa, inp, num_blocks=1, threads_per_block=32,
                                   cpu_transition_ns=4.0)
        assert r2.timing.cpu_s == pytest.approx(2 * r1.timing.cpu_s)

    def test_measure_success_off(self, small_case):
        dfa, inp = small_case
        r = repro.run_speculative(dfa, inp, num_blocks=1, threads_per_block=32,
                                  merge="parallel", measure_success=False,
                                  price=False)
        assert r.true_starts is None
        assert r.stats.success_total == 0

    def test_merge_tree_kept_on_request(self, small_case):
        dfa, inp = small_case
        r = repro.run_speculative(dfa, inp, num_blocks=1, threads_per_block=32,
                                  merge="parallel", keep_merge_tree=True,
                                  price=False)
        assert r.merge_tree is not None
        r2 = repro.run_speculative(dfa, inp, num_blocks=1, threads_per_block=32,
                                   merge="parallel", price=False)
        assert r2.merge_tree is None

    def test_empty_input(self, small_case):
        dfa, _ = small_case
        r = repro.run_speculative(dfa, np.zeros(0, dtype=np.int32), num_blocks=1,
                                  threads_per_block=32, price=False)
        assert r.final_state == dfa.start

    def test_input_shorter_than_threads(self, small_case):
        dfa, _ = small_case
        inp = random_input(3, 10, seed=1)
        r = repro.run_speculative(dfa, inp, num_blocks=2, threads_per_block=64,
                                  price=False)
        assert r.final_state == run_reference(dfa, inp)

    def test_cache_table_attached(self, small_case):
        dfa, inp = small_case
        r = repro.run_speculative(dfa, inp, num_blocks=1, threads_per_block=32,
                                  cache_table=True, price=False)
        assert r.cache is not None
        assert r.stats.cache_hits + r.stats.cache_misses > 0

    def test_codegen_rejects_cache(self, small_case):
        dfa, inp = small_case
        with pytest.raises(ValueError, match="codegen"):
            repro.run_speculative(dfa, inp, num_blocks=1, threads_per_block=32,
                                  cache_table=True, backend="codegen")
