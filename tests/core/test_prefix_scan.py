"""Tests for the function-composition (prefix-scan) engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.prefix_scan import (
    chunk_transition_functions,
    run_prefix_scan,
)
from repro.fsm.run import run_all_starts, run_reference
from repro.workloads.chunking import plan_chunks
from tests.conftest import make_random_dfa, random_input


class TestChunkFunctions:
    def test_matches_run_all_starts(self):
        dfa = make_random_dfa(6, 3, seed=0)
        inp = random_input(3, 200, seed=1)
        plan = plan_chunks(200, 4)
        F = chunk_transition_functions(dfa, inp, plan)
        for c in range(4):
            seg = inp[plan.chunk_slice(c)]
            np.testing.assert_array_equal(F[c], run_all_starts(dfa, seg))

    def test_empty_chunks_identity(self):
        dfa = make_random_dfa(5, 2, seed=1)
        inp = random_input(2, 2, seed=2)
        plan = plan_chunks(2, 5)
        F = chunk_transition_functions(dfa, inp, plan)
        np.testing.assert_array_equal(F[2], np.arange(5))


class TestRunPrefixScan:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 500),
        n=st.integers(0, 800),
        chunks=st.integers(1, 40),
        layout=st.sampled_from(["transformed", "natural"]),
    )
    def test_equals_reference(self, seed, n, chunks, layout):
        dfa = make_random_dfa(7, 2, seed=seed)
        inp = random_input(2, n, seed=seed + 1)
        res = run_prefix_scan(dfa, inp, num_chunks=chunks, layout=layout)
        assert res.final_state == run_reference(dfa, inp)

    def test_total_function_correct(self):
        dfa = make_random_dfa(8, 3, seed=2)
        inp = random_input(3, 500, seed=3)
        res = run_prefix_scan(dfa, inp, num_chunks=16)
        np.testing.assert_array_equal(res.total_function, run_all_starts(dfa, inp))

    def test_agrees_with_spec_engine(self):
        import repro

        dfa = make_random_dfa(6, 2, seed=4)
        inp = random_input(2, 3000, seed=5)
        scan = run_prefix_scan(dfa, inp, num_chunks=64)
        spec = repro.run_speculative(dfa, inp, k=3, num_blocks=2,
                                     threads_per_block=32, price=False)
        assert scan.final_state == spec.final_state

    def test_work_is_enumerative(self):
        dfa = make_random_dfa(9, 2, seed=6)
        inp = random_input(2, 900, seed=7)
        res = run_prefix_scan(dfa, inp, num_chunks=8)
        assert res.stats.local_transitions == 900 * 9

    def test_merge_ops_logarithmic(self):
        dfa = make_random_dfa(4, 2, seed=8)
        inp = random_input(2, 640, seed=9)
        res = run_prefix_scan(dfa, inp, num_chunks=64)
        assert res.stats.merge_pair_ops == 63  # 32+16+8+4+2+1

    def test_validation(self):
        dfa = make_random_dfa(4, 2, seed=8)
        with pytest.raises(ValueError):
            run_prefix_scan(dfa, np.zeros((2, 2), dtype=np.int32))
        with pytest.raises(ValueError):
            run_prefix_scan(dfa, np.zeros(4, dtype=np.int32), num_chunks=0)

    def test_no_reexecution_ever(self):
        from repro.apps.div import div7_dfa

        dfa = div7_dfa()  # adversarial for speculation, trivial for scan
        inp = random_input(2, 7000, seed=10)
        res = run_prefix_scan(dfa, inp, num_chunks=128)
        assert res.final_state == run_reference(dfa, inp)
        assert res.stats.total_reexec_items == 0
