"""Tests for the chunk-result algebra and ExecStats."""

import numpy as np
import pytest

from repro.core.types import ChunkResults, ExecStats, SegmentMaps


def simple_results() -> ChunkResults:
    spec = np.array([[0, 1], [2, 3]], dtype=np.int32)
    end = np.array([[2, 3], [0, 1]], dtype=np.int32)
    return ChunkResults(spec=spec, end=end, valid=np.ones((2, 2), dtype=bool))


class TestChunkResults:
    def test_shapes(self):
        r = simple_results()
        assert r.num_chunks == 2 and r.k == 2

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            ChunkResults(
                spec=np.zeros((2, 2), dtype=np.int32),
                end=np.zeros((2, 3), dtype=np.int32),
                valid=np.ones((2, 2), dtype=bool),
            )

    def test_1d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            ChunkResults(
                spec=np.zeros(2, dtype=np.int32),
                end=np.zeros(2, dtype=np.int32),
                valid=np.ones(2, dtype=bool),
            )

    def test_lookup_hit(self):
        assert simple_results().lookup(0, 1) == 3

    def test_lookup_miss(self):
        assert simple_results().lookup(0, 9) is None

    def test_lookup_respects_validity(self):
        r = simple_results()
        r.valid[0, 1] = False
        assert r.lookup(0, 1) is None


class TestSegmentMaps:
    def test_from_chunks(self):
        maps = SegmentMaps.from_chunks(simple_results())
        assert maps.num_segments == 2 and maps.k == 2
        np.testing.assert_array_equal(maps.chunk_lo, [0, 1])
        np.testing.assert_array_equal(maps.chunk_hi, [1, 2])

    def test_from_chunks_copies(self):
        r = simple_results()
        maps = SegmentMaps.from_chunks(r)
        maps.spec[0, 0] = 99
        assert r.spec[0, 0] == 0


class TestExecStats:
    def test_success_rate_empty(self):
        assert ExecStats().success_rate == 1.0

    def test_success_rate(self):
        s = ExecStats(success_hits=3, success_total=4)
        assert s.success_rate == 0.75

    def test_cache_hit_rate_default(self):
        assert ExecStats().cache_hit_rate == 1.0

    def test_cache_hit_rate(self):
        s = ExecStats(cache_hits=9, cache_misses=1)
        assert s.cache_hit_rate == 0.9

    def test_total_reexec(self):
        s = ExecStats(reexec_items_seq=1, reexec_items_eager=2, fixup_items=3)
        assert s.total_reexec_items == 6

    def test_project_scales_items(self):
        s = ExecStats(num_items=100, local_steps=10, local_transitions=400,
                      local_input_reads=100, fixup_items=20)
        p = s.project(1000)
        assert p.num_items == 1000
        assert p.local_steps == 100
        assert p.local_transitions == 4000
        assert p.fixup_items == 200

    def test_project_preserves_structure(self):
        s = ExecStats(num_items=100, num_chunks=8, k=2, merge_pair_ops=7,
                      check_comparisons=30, success_hits=7, success_total=7)
        p = s.project(1000)
        assert p.num_chunks == 8
        assert p.merge_pair_ops == 7
        assert p.check_comparisons == 30
        assert p.success_rate == s.success_rate

    def test_project_zero_items_rejected(self):
        with pytest.raises(ValueError):
            ExecStats(num_items=0).project(100)

    def test_project_negative_rejected(self):
        with pytest.raises(ValueError):
            ExecStats(num_items=10).project(-1)

    def test_merged_with(self):
        a = ExecStats(num_items=5, local_transitions=10)
        b = ExecStats(num_items=7, local_transitions=20)
        m = a.merged_with(b)
        assert m.local_transitions == 30
        assert m.num_items == 5  # config echo keeps self's value
