"""Tests for the sequential merge."""

import numpy as np

from repro.core.local import process_chunks
from repro.core.merge_seq import merge_sequential
from repro.core.types import ChunkResults, ExecStats
from repro.fsm.run import run_reference, run_reference_trace
from repro.workloads.chunking import plan_chunks
from tests.conftest import make_random_dfa, random_input


def run_pipeline(dfa, inp, chunks, spec, check="nested", stats=None):
    plan = plan_chunks(inp.size, chunks)
    end, _ = process_chunks(dfa, inp, plan, spec)
    results = ChunkResults(spec=spec, end=end, valid=np.ones_like(spec, dtype=bool))
    return merge_sequential(dfa, inp, plan, results, check=check, stats=stats), plan


class TestMergeSequential:
    def test_correct_with_perfect_speculation(self):
        dfa = make_random_dfa(5, 2, seed=1)
        inp = random_input(2, 200, seed=2)
        plan = plan_chunks(200, 4)
        trace = run_reference_trace(dfa, inp)
        truth = np.concatenate([[dfa.start], trace[plan.starts[1:] - 1]])
        spec = truth[:, None].astype(np.int32)  # k=1, always right
        stats = ExecStats()
        (final, starts), _ = run_pipeline(dfa, inp, 4, spec, stats=stats)
        assert final == run_reference(dfa, inp)
        np.testing.assert_array_equal(starts, truth)
        assert stats.reexec_chunks_seq == 0
        assert stats.success_rate == 1.0

    def test_correct_with_hopeless_speculation(self):
        dfa = make_random_dfa(6, 2, seed=2)
        inp = random_input(2, 150, seed=3)
        # speculate a state that is always wrong by construction? use k=1
        # with fixed state and verify re-execution fixes everything
        spec = np.full((5, 1), 3, dtype=np.int32)
        stats = ExecStats()
        (final, _), _ = run_pipeline(dfa, inp, 5, spec, stats=stats)
        assert final == run_reference(dfa, inp)
        # chunk 0 is wrong too here (spec didn't include start): it re-executes
        assert stats.reexec_chunks_seq >= 1

    def test_reexec_counts_items(self):
        dfa = make_random_dfa(6, 2, seed=2)
        inp = random_input(2, 100, seed=3)
        spec = np.full((4, 1), 5, dtype=np.int32)
        stats = ExecStats()
        (final, _), _ = run_pipeline(dfa, inp, 4, spec, stats=stats)
        assert final == run_reference(dfa, inp)
        assert stats.reexec_items_seq == stats.reexec_chunks_seq * 25

    def test_success_counter_excludes_chunk0(self):
        dfa = make_random_dfa(5, 2, seed=4)
        inp = random_input(2, 80, seed=5)
        spec = np.full((4, 1), dfa.start, dtype=np.int32)
        stats = ExecStats()
        run_pipeline(dfa, inp, 4, spec, stats=stats)
        assert stats.success_total == 3

    def test_uncounted_mode(self):
        dfa = make_random_dfa(5, 2, seed=4)
        inp = random_input(2, 80, seed=5)
        spec = np.full((4, 1), dfa.start, dtype=np.int32)
        (final, starts), _ = run_pipeline(dfa, inp, 4, spec, stats=None)
        assert final == run_reference(dfa, inp)
        assert starts.shape == (4,)

    def test_hash_check_same_result(self):
        dfa = make_random_dfa(8, 3, seed=6)
        inp = random_input(3, 300, seed=7)
        rng = np.random.default_rng(1)
        spec = np.stack([rng.permutation(8)[:4] for _ in range(6)]).astype(np.int32)
        spec[0, 0] = dfa.start
        (f1, s1), _ = run_pipeline(dfa, inp, 6, spec, check="nested")
        (f2, s2), _ = run_pipeline(dfa, inp, 6, spec, check="hash")
        assert f1 == f2 == run_reference(dfa, inp)
        np.testing.assert_array_equal(s1, s2)

    def test_respects_validity_bits(self):
        dfa = make_random_dfa(5, 2, seed=8)
        inp = random_input(2, 60, seed=9)
        plan = plan_chunks(60, 3)
        spec = np.full((3, 1), dfa.start, dtype=np.int32)
        end, _ = process_chunks(dfa, inp, plan, spec)
        valid = np.ones_like(spec, dtype=bool)
        valid[1, 0] = False  # poison chunk 1's entry
        results = ChunkResults(spec=spec, end=end, valid=valid)
        final, _ = merge_sequential(dfa, inp, plan, results)
        assert final == run_reference(dfa, inp)

    def test_true_boundary_walk_equivalence(self):
        from repro.core.merge_seq import true_boundary_walk

        dfa = make_random_dfa(7, 2, seed=10)
        inp = random_input(2, 500, seed=11)
        plan = plan_chunks(500, 9)
        rng = np.random.default_rng(3)
        spec = np.stack([rng.permutation(7)[:3] for _ in range(9)]).astype(np.int32)
        end, _ = process_chunks(dfa, inp, plan, spec)
        results = ChunkResults(spec=spec, end=end,
                               valid=np.ones_like(spec, dtype=bool))
        f1, s1 = merge_sequential(dfa, inp, plan, results, stats=None)
        f2, s2 = true_boundary_walk(dfa, inp, plan, results)
        assert f1 == f2
        np.testing.assert_array_equal(s1, s2)

    def test_true_boundary_walk_fallback(self, monkeypatch):
        import repro.core.merge_seq as ms
        from repro.core.merge_seq import true_boundary_walk

        monkeypatch.setattr(ms, "_LUT_ENTRY_BUDGET", 1)  # force the fallback
        dfa = make_random_dfa(5, 2, seed=12)
        inp = random_input(2, 200, seed=13)
        plan = plan_chunks(200, 4)
        spec = np.full((4, 1), dfa.start, dtype=np.int32)
        end, _ = process_chunks(dfa, inp, plan, spec)
        results = ChunkResults(spec=spec, end=end,
                               valid=np.ones_like(spec, dtype=bool))
        f, s = true_boundary_walk(dfa, inp, plan, results)
        assert f == run_reference(dfa, inp)
        assert s.shape == (4,)

    def test_true_boundary_walk_respects_validity(self):
        from repro.core.merge_seq import true_boundary_walk

        dfa = make_random_dfa(5, 2, seed=14)
        inp = random_input(2, 120, seed=15)
        plan = plan_chunks(120, 3)
        spec = np.full((3, 1), dfa.start, dtype=np.int32)
        end, _ = process_chunks(dfa, inp, plan, spec)
        valid = np.ones_like(spec, dtype=bool)
        valid[1, 0] = False
        results = ChunkResults(spec=spec, end=end, valid=valid)
        f, _ = true_boundary_walk(dfa, inp, plan, results)
        assert f == run_reference(dfa, inp)

    def test_seq_steps_counted(self):
        dfa = make_random_dfa(5, 2, seed=4)
        inp = random_input(2, 80, seed=5)
        spec = np.full((4, 1), dfa.start, dtype=np.int32)
        stats = ExecStats()
        run_pipeline(dfa, inp, 4, spec, stats=stats)
        assert stats.seq_merge_steps == 4
