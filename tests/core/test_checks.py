"""Tests for runtime checks: vectorized counting vs the paper's pseudocode."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checks import (
    DEFAULT_HASH_SIZE,
    HASH_THRESHOLD,
    count_hash,
    count_nested,
    hash_check_reference,
    match_pairs,
    nested_loop_check_reference,
    select_check,
)
from repro.core.types import ExecStats


class TestSelect:
    def test_auto_small_k(self):
        assert select_check(12, "auto") == "nested"

    def test_auto_large_k(self):
        assert select_check(13, "auto") == "hash"

    def test_threshold_is_papers(self):
        assert HASH_THRESHOLD == 12

    def test_explicit(self):
        assert select_check(2, "hash") == "hash"
        assert select_check(50, "nested") == "nested"

    def test_invalid(self):
        with pytest.raises(ValueError):
            select_check(4, "bogus")


class TestMatchPairs:
    def test_basic_match(self):
        el = np.array([[3, 5]])
        sr = np.array([[5, 3]])
        idx, found = match_pairs(el, np.ones((1, 2), bool), sr, np.ones((1, 2), bool))
        assert found.all()
        np.testing.assert_array_equal(idx[0], [1, 0])

    def test_miss(self):
        el = np.array([[9, 5]])
        sr = np.array([[5, 3]])
        idx, found = match_pairs(el, np.ones((1, 2), bool), sr, np.ones((1, 2), bool))
        np.testing.assert_array_equal(found[0], [False, True])

    def test_invalid_right_excluded(self):
        el = np.array([[3]])
        sr = np.array([[3]])
        _, found = match_pairs(
            el, np.ones((1, 1), bool), sr, np.zeros((1, 1), bool)
        )
        assert not found.any()

    def test_invalid_left_reports_not_found(self):
        el = np.array([[3]])
        sr = np.array([[3]])
        _, found = match_pairs(
            el, np.zeros((1, 1), bool), sr, np.ones((1, 1), bool)
        )
        assert not found.any()

    def test_first_valid_match_selected(self):
        el = np.array([[7]])
        sr = np.array([[7, 7, 7]])
        vr = np.array([[False, True, True]])
        idx, found = match_pairs(el, np.ones((1, 1), bool), sr, vr)
        assert found.all() and idx[0, 0] == 1


class TestCountsVsReference:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2000), k=st.integers(1, 12))
    def test_nested_counts_match_pseudocode(self, seed, k):
        rng = np.random.default_rng(seed)
        n_states = 20
        states = rng.integers(0, n_states, size=k)
        init_states = rng.permutation(n_states)[:k]  # distinct, like real spec rows
        next_states = rng.integers(0, n_states, size=k)

        ref_out, ref_needs, ref_compares = nested_loop_check_reference(
            states, init_states, next_states
        )
        stats = ExecStats()
        idx, found = match_pairs(
            states[None, :], np.ones((1, k), bool),
            init_states[None, :], np.ones((1, k), bool),
        )
        count_nested(idx, found, np.ones((1, k), bool), k, stats)
        assert stats.check_comparisons == ref_compares
        np.testing.assert_array_equal(found[0], ~ref_needs)
        got = np.where(found[0], next_states[idx[0]], states)
        np.testing.assert_array_equal(got, ref_out)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2000), k=st.integers(1, 16))
    def test_hash_counts_match_pseudocode(self, seed, k):
        rng = np.random.default_rng(seed)
        n_states = 40
        states = rng.integers(0, n_states, size=k)
        init_states = rng.permutation(n_states)[:k]
        next_states = rng.integers(0, n_states, size=k)

        ref_out, ref_needs, ref_inserts, ref_steps = hash_check_reference(
            states, init_states, next_states, hash_size=DEFAULT_HASH_SIZE
        )
        stats = ExecStats()
        idx, found = match_pairs(
            states[None, :], np.ones((1, k), bool),
            init_states[None, :], np.ones((1, k), bool),
        )
        count_hash(
            states[None, :], np.ones((1, k), bool),
            init_states[None, :], np.ones((1, k), bool),
            idx, found, stats, hash_size=DEFAULT_HASH_SIZE,
        )
        assert stats.hash_inserts == ref_inserts
        assert stats.hash_probe_steps == ref_steps
        np.testing.assert_array_equal(found[0], ~ref_needs)
        got = np.where(found[0], next_states[idx[0]], states)
        np.testing.assert_array_equal(got, ref_out)

    def test_hash_and_nested_agree_on_results(self):
        rng = np.random.default_rng(1)
        k = 8
        states = rng.integers(0, 30, size=k)
        init_states = rng.permutation(30)[:k]
        next_states = rng.integers(0, 30, size=k)
        out_n, needs_n, _ = nested_loop_check_reference(states, init_states, next_states)
        out_h, needs_h, _, _ = hash_check_reference(states, init_states, next_states)
        np.testing.assert_array_equal(out_n, out_h)
        np.testing.assert_array_equal(needs_n, needs_h)

    def test_nested_miss_costs_k(self):
        stats = ExecStats()
        idx = np.zeros((1, 1), dtype=np.int64)
        found = np.zeros((1, 1), dtype=bool)
        count_nested(idx, found, np.ones((1, 1), bool), 5, stats)
        assert stats.check_comparisons == 5

    def test_hash_probe_counts_only_valid_left(self):
        stats = ExecStats()
        el = np.array([[1, 2]])
        vl = np.array([[True, False]])
        sr = np.array([[1, 9]])
        vr = np.ones((1, 2), bool)
        idx, found = match_pairs(el, vl, sr, vr)
        count_hash(el, vl, sr, vr, idx, found, stats)
        assert stats.hash_probes == 1
