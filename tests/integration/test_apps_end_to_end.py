"""End-to-end integration: every paper application through the full engine.

For each application: build the machine and a real workload, run the
speculative engine in several configurations, and verify the final state
and application outputs against the trusted sequential reference.
"""

import numpy as np
import pytest

import repro
from repro.apps.registry import APPLICATIONS, get_application
from repro.fsm.run import run_reference

N = 80_000

CONFIGS = [
    dict(merge="sequential", check="nested", reexec="delayed", layout="natural"),
    dict(merge="parallel", check="nested", reexec="delayed", layout="transformed"),
    dict(merge="parallel", check="hash", reexec="eager", layout="transformed"),
]


@pytest.fixture(scope="module")
def instances():
    return {
        name: get_application(name).build_instance(N, seed=2)
        for name in APPLICATIONS
    }


class TestFinalStates:
    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    @pytest.mark.parametrize("cfg", range(len(CONFIGS)))
    def test_engine_equals_reference(self, instances, name, cfg):
        dfa, inp = instances[name]
        app = get_application(name)
        r = repro.run_speculative(
            dfa, inp, k=app.best_k, num_blocks=2, threads_per_block=64,
            lookback=app.default_lookback, price=False, **CONFIGS[cfg],
        )
        assert r.final_state == run_reference(dfa, inp)

    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    def test_spec_n_equals_reference(self, instances, name):
        dfa, inp = instances[name]
        r = repro.run_speculative(dfa, inp, k=None, num_blocks=2,
                                  threads_per_block=32, price=False)
        assert r.final_state == run_reference(dfa, inp)


class TestApplicationOutputs:
    def test_huffman_decode_roundtrip(self, instances):
        dfa, bits = instances["huffman"]
        r = repro.run_speculative(
            dfa, bits, k=8, num_blocks=2, threads_per_block=64, lookback=16,
            collect=("emissions",), price=False,
        )
        _, values = r.emissions
        # decode sequentially with the same transducer
        state = dfa.start
        expected = []
        for b in bits:
            e = dfa.emit[b, state]
            state = dfa.table[b, state]
            if e >= 0:
                expected.append(int(e))
        np.testing.assert_array_equal(values, expected)

    def test_html_tokens_sorted_and_valid(self, instances):
        dfa, ids = instances["html"]
        r = repro.run_speculative(
            dfa, ids, k=1, num_blocks=2, threads_per_block=32, lookback=64,
            collect=("emissions",), price=False,
        )
        positions, values = r.emissions
        assert np.all(np.diff(positions) > 0)
        assert values.min() >= 0 and values.max() <= 5
        assert positions.size > 100  # synthetic pages are token-dense

    def test_regex1_match_positions(self, instances):
        dfa, ids = instances["regex1"]
        from repro.fsm.run import run_reference_trace

        r = repro.run_speculative(
            dfa, ids, k=8, num_blocks=2, threads_per_block=32, lookback=0,
            collect=("match_positions",), price=False,
        )
        trace = run_reference_trace(dfa, ids)
        np.testing.assert_array_equal(
            r.match_positions, np.flatnonzero(dfa.accepting[trace])
        )

    def test_div7_acceptance(self, instances):
        dfa, bits = instances["div7"]
        r = repro.run_speculative(dfa, bits, k=None, num_blocks=2,
                                  threads_per_block=32, price=False)
        value_mod_7 = 0
        for b in bits:
            value_mod_7 = (2 * value_mod_7 + int(b)) % 7
        assert r.final_state == value_mod_7


class TestSuccessRates:
    def test_best_k_success_near_one(self, instances):
        for name in ("huffman", "regex1", "regex2", "html"):
            dfa, inp = instances[name]
            app = get_application(name)
            r = repro.run_speculative(
                dfa, inp, k=app.best_k, num_blocks=2, threads_per_block=64,
                lookback=app.default_lookback, price=False,
            )
            assert r.success_rate > 0.98, name

    def test_div7_success_is_k_over_7(self, instances):
        dfa, bits = instances["div7"]
        r = repro.run_speculative(dfa, bits, k=2, num_blocks=2,
                                  threads_per_block=64, price=False)
        assert r.success_rate == pytest.approx(2 / 7, abs=0.06)
