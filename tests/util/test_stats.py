"""Tests for repro.util.stats."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import cdf_by_frequency, describe, geometric_mean


class TestCdf:
    def test_simple(self):
        cdf = cdf_by_frequency(np.array([1, 3, 4, 2]))
        np.testing.assert_allclose(cdf, [0.4, 0.7, 0.9, 1.0])

    def test_sorted_descending_input_equivalent(self):
        a = cdf_by_frequency(np.array([5, 1, 3]))
        b = cdf_by_frequency(np.array([1, 3, 5]))
        np.testing.assert_allclose(a, b)

    def test_all_zero(self):
        np.testing.assert_array_equal(cdf_by_frequency(np.zeros(3)), np.zeros(3))

    def test_empty(self):
        assert cdf_by_frequency(np.zeros(0)).size == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            cdf_by_frequency(np.array([1, -1]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            cdf_by_frequency(np.ones((2, 2)))

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50))
    def test_monotone_and_bounded(self, counts):
        cdf = cdf_by_frequency(np.array(counts, dtype=float))
        assert np.all(np.diff(cdf) >= -1e-12)
        if sum(counts):
            assert cdf[-1] == pytest.approx(1.0)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean(np.array([1.0, 4.0])) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean(np.array([3.0])) == pytest.approx(3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean(np.zeros(0))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean(np.array([1.0, 0.0]))


class TestDescribe:
    def test_fields(self):
        s = describe(np.array([1.0, 2.0, 3.0]))
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.median == pytest.approx(2.0)
        assert (s.min, s.max) == (1.0, 3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            describe(np.zeros(0))
