"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_dtype_integer,
    check_in_set,
    check_positive,
    check_range,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)

    def test_rejects_zero_strict(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive("x", 0)

    def test_accepts_zero_nonstrict(self):
        check_positive("x", 0, strict=False)

    def test_rejects_negative_nonstrict(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)


class TestCheckRange:
    def test_inside(self):
        check_range("x", 5, 0, 10)

    def test_boundaries_inclusive(self):
        check_range("x", 0, 0, 10)
        check_range("x", 10, 0, 10)

    def test_outside(self):
        with pytest.raises(ValueError, match="must be in"):
            check_range("x", 11, 0, 10)


class TestCheckInSet:
    def test_member(self):
        check_in_set("mode", "a", ("a", "b"))

    def test_nonmember_lists_choices(self):
        with pytest.raises(ValueError, match="one of"):
            check_in_set("mode", "c", ("a", "b"))


class TestCheckDtype:
    def test_integer_ok(self):
        check_dtype_integer("a", np.zeros(3, dtype=np.int32))

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            check_dtype_integer("a", np.zeros(3, dtype=np.float64))
