"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_from_int_deterministic(self):
        a = ensure_rng(7).random(4)
        b = ensure_rng(7).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(4), ensure_rng(2).random(4))

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(8), b.random(8))

    def test_spawn_deterministic(self):
        a = spawn_rngs(42, 3)[1].random(4)
        b = spawn_rngs(42, 3)[1].random(4)
        np.testing.assert_array_equal(a, b)
