"""Tests for repro.util.bitstream."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.bitstream import BitReader, BitWriter, bits_from_bytes, bits_to_bytes


class TestPacking:
    def test_roundtrip_simple(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1], dtype=np.uint8)
        payload, n = bits_to_bytes(bits)
        assert n == 9
        out = bits_from_bytes(payload, n)
        np.testing.assert_array_equal(out, bits)

    def test_empty(self):
        payload, n = bits_to_bytes(np.zeros(0, dtype=np.uint8))
        assert n == 0
        assert bits_from_bytes(payload, 0).size == 0

    def test_exact_byte_boundary(self):
        bits = np.array([1] * 16, dtype=np.uint8)
        payload, n = bits_to_bytes(bits)
        assert len(payload) == 2
        np.testing.assert_array_equal(bits_from_bytes(payload, n), bits)

    def test_msb_first(self):
        payload, _ = bits_to_bytes(np.array([1, 0, 0, 0, 0, 0, 0, 0], dtype=np.uint8))
        assert payload == b"\x80"

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="only 0 and 1"):
            bits_to_bytes(np.array([0, 2], dtype=np.uint8))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            bits_to_bytes(np.zeros((2, 2), dtype=np.uint8))

    def test_rejects_negative_nbits(self):
        with pytest.raises(ValueError):
            bits_from_bytes(b"\x00", -1)

    def test_rejects_oversized_nbits(self):
        with pytest.raises(ValueError, match="exceeds payload"):
            bits_from_bytes(b"\x00", 9)

    @given(st.lists(st.integers(0, 1), max_size=200))
    def test_roundtrip_property(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        payload, n = bits_to_bytes(arr)
        np.testing.assert_array_equal(bits_from_bytes(payload, n), arr)


class TestWriterReader:
    def test_writer_accumulates(self):
        w = BitWriter()
        w.write(np.array([1, 0], dtype=np.uint8))
        w.write_bit(1)
        assert len(w) == 3
        np.testing.assert_array_equal(w.getvalue(), [1, 0, 1])

    def test_writer_empty(self):
        assert BitWriter().getvalue().size == 0

    def test_writer_packed(self):
        w = BitWriter()
        w.write(np.array([1, 1, 1, 1], dtype=np.uint8))
        payload, n = w.packed()
        assert (payload, n) == (b"\xf0", 4)

    def test_writer_rejects_bad_bit(self):
        with pytest.raises(ValueError):
            BitWriter().write_bit(2)

    def test_reader_sequential(self):
        r = BitReader(np.array([1, 0, 1], dtype=np.uint8))
        assert r.read_bit() == 1
        assert r.read_bit() == 0
        assert r.remaining == 1

    def test_reader_bulk(self):
        r = BitReader(np.array([1, 0, 1, 1], dtype=np.uint8))
        np.testing.assert_array_equal(r.read(3), [1, 0, 1])
        assert r.remaining == 1

    def test_reader_eof(self):
        r = BitReader(np.array([1], dtype=np.uint8))
        r.read_bit()
        with pytest.raises(EOFError):
            r.read_bit()

    def test_reader_overread(self):
        with pytest.raises(EOFError):
            BitReader(np.array([1], dtype=np.uint8)).read(2)

    def test_reader_negative(self):
        with pytest.raises(ValueError):
            BitReader(np.array([1], dtype=np.uint8)).read(-1)
