"""Framing and channel-level fault drills for repro.dist.transport."""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.dist.netfaults import (
    NetFaultPlan,
    delay_message,
    drop_message,
    duplicate_message,
    partition_host,
    truncate_frame,
)
from repro.dist.transport import (
    Channel,
    TransportClosed,
    TransportTimeout,
    recv_frame,
    send_frame,
)


def socket_pair() -> tuple[socket.socket, socket.socket]:
    """A connected local TCP pair (not socket.socketpair: we want TCP)."""
    srv = socket.socket()
    srv.bind(("127.0.0.1", 0))
    srv.listen(1)
    a = socket.create_connection(srv.getsockname())
    b, _ = srv.accept()
    srv.close()
    return a, b


def test_frame_roundtrip_arrays_and_header():
    a, b = socket_pair()
    try:
        arrays = {
            "x": np.arange(7, dtype=np.int32),
            "y": np.ones((3, 2), dtype=np.float64),
            "scalar": np.int32(5),
        }
        send_frame(a, {"type": "t", "n": 42, "s": "hello"}, arrays)
        header, out = recv_frame(b, timeout=2.0)
        assert header == {"type": "t", "n": 42, "s": "hello"}
        np.testing.assert_array_equal(out["x"], arrays["x"])
        np.testing.assert_array_equal(out["y"], arrays["y"])
        assert out["x"].dtype == np.int32 and out["y"].shape == (3, 2)
        # ascontiguousarray promotes 0-d scalars to 1-D on encode.
        assert out["scalar"].shape == (1,) and int(out["scalar"][0]) == 5
    finally:
        a.close()
        b.close()


def test_recv_timeout_and_eof():
    a, b = socket_pair()
    try:
        with pytest.raises(TransportTimeout):
            recv_frame(b, timeout=0.05)
        a.close()
        with pytest.raises(TransportClosed):
            recv_frame(b, timeout=1.0)
    finally:
        b.close()


def test_malformed_magic_is_closed_not_crash():
    a, b = socket_pair()
    try:
        a.sendall(b"JUNKJUNKJUNKJUNK")
        with pytest.raises(TransportClosed):
            recv_frame(b, timeout=1.0)
    finally:
        a.close()
        b.close()


def test_poll_timeout_mid_frame_keeps_stream_framed():
    """A short-poll timeout while a large frame is in flight must not
    desynchronize the stream: the partial bytes stay buffered and a
    later poll returns the complete frame (the agent serve loop polls
    at 0.25s while multi-hundred-KB input shards stream in)."""
    a, b = socket_pair()
    ca, cb = Channel(a), Channel(b)
    payload = {"blob": np.arange(200_000, dtype=np.int32)}
    frame_done = threading.Event()

    def slow_sender():
        # Hand-feed the encoded frame in two halves with a pause far
        # longer than the receiver's poll timeout.
        from repro.dist.transport import _encode

        frame = _encode({"type": "big"}, payload)
        a.sendall(frame[: len(frame) // 2])
        import time

        time.sleep(0.3)
        a.sendall(frame[len(frame) // 2:])
        frame_done.set()

    t = threading.Thread(target=slow_sender)
    t.start()
    try:
        polls = 0
        while True:
            try:
                header, arrays = cb.recv(timeout=0.05)
                break
            except TransportTimeout:
                polls += 1
                assert polls < 100, "frame never completed"
        assert header["type"] == "big"
        np.testing.assert_array_equal(arrays["blob"], payload["blob"])
        assert polls >= 1  # the pause actually exercised resume
        # The stream is still framed: a follow-up message round-trips.
        frame_done.wait(2.0)
        ca.send({"type": "after"})
        header, _ = cb.recv(timeout=2.0)
        assert header["type"] == "after"
    finally:
        t.join()
        ca.close()
        cb.close()


def test_coalesced_frames_split_correctly():
    """Two frames landing in one TCP segment are delivered one per
    recv call — the accumulator must not swallow the second."""
    a, b = socket_pair()
    ca, cb = Channel(a), Channel(b)
    try:
        ca.send({"type": "one", "x": 1})
        ca.send({"type": "two", "x": 2})
        h1, _ = cb.recv(timeout=2.0)
        h2, _ = cb.recv(timeout=2.0)
        assert (h1["type"], h2["type"]) == ("one", "two")
    finally:
        ca.close()
        cb.close()


def test_channel_counters_and_plain_send_recv():
    a, b = socket_pair()
    ca, cb = Channel(a), Channel(b)
    try:
        assert ca.send({"type": "ping"})
        header, _ = cb.recv(timeout=2.0)
        assert header["type"] == "ping"
        assert ca.sent == 1 and cb.received == 1
        assert ca.bytes_sent > 0
    finally:
        ca.close()
        cb.close()


def test_drop_drill_swallows_send_exactly_once():
    plan = NetFaultPlan([drop_message(0, direction="send", match_type="x")])
    a, b = socket_pair()
    ca, cb = Channel(a, host=0, faults=plan), Channel(b)
    try:
        assert not ca.send({"type": "x"})  # dropped
        assert ca.send({"type": "x"})  # second one flows
        header, _ = cb.recv(timeout=2.0)
        assert header["type"] == "x"
        assert len(plan.fired_ids) == 1
    finally:
        ca.close()
        cb.close()


def test_dup_drill_delivers_twice_on_recv():
    plan = NetFaultPlan([duplicate_message(0, match_type="m")])
    a, b = socket_pair()
    ca, cb = Channel(a), Channel(b, host=0, faults=plan)
    try:
        ca.send({"type": "m", "i": 1})
        h1, _ = cb.recv(timeout=2.0)
        h2, _ = cb.recv(timeout=2.0)
        assert h1 == h2 == {"type": "m", "i": 1}
    finally:
        ca.close()
        cb.close()


def test_delay_drill_holds_message():
    plan = NetFaultPlan([delay_message(0, match_type="m", seconds=0.15)])
    a, b = socket_pair()
    ca, cb = Channel(a), Channel(b, host=0, faults=plan)
    try:
        ca.send({"type": "m"})
        import time

        t0 = time.monotonic()
        cb.recv(timeout=2.0)
        assert time.monotonic() - t0 >= 0.14
    finally:
        ca.close()
        cb.close()


def test_truncate_drill_tears_frame_both_ends():
    plan = NetFaultPlan([truncate_frame(0, direction="send", match_type="m")])
    a, b = socket_pair()
    ca, cb = Channel(a, host=0, faults=plan), Channel(b)
    try:
        with pytest.raises(TransportClosed):
            ca.send({"type": "m", "pad": "p" * 64})
        assert ca.closed
        with pytest.raises(TransportClosed):
            cb.recv(timeout=2.0)  # short read -> closed
    finally:
        ca.close()
        cb.close()


def test_partition_window_swallows_both_directions():
    plan = NetFaultPlan([partition_host(0, match_type="m", duration_s=0.2)])
    a, b = socket_pair()
    ca, cb = Channel(a, host=0, faults=plan), Channel(b)
    try:
        # The matched send opens the window and is itself swallowed.
        assert not ca.send({"type": "m"})
        assert not ca.send({"type": "other"})  # still inside the window
        import time

        time.sleep(0.25)
        assert ca.send({"type": "after"})
        header, _ = cb.recv(timeout=2.0)
        assert header["type"] == "after"
    finally:
        ca.close()
        cb.close()


def test_exactly_once_firing_under_concurrent_messages():
    plan = NetFaultPlan([drop_message(0, direction="send", match_type="m")])
    a, b = socket_pair()
    ca, cb = Channel(a, host=0, faults=plan), Channel(b)
    got = []

    def reader():
        while True:
            try:
                header, _ = cb.recv(timeout=1.0)
            except (TransportClosed, TransportTimeout):
                return
            got.append(header["i"])

    t = threading.Thread(target=reader)
    t.start()
    try:
        for i in range(10):
            ca.send({"type": "m", "i": i})
    finally:
        ca.close()
        t.join()
        cb.close()
    assert sorted(got) == list(range(1, 10))  # exactly message 0 dropped
    assert len(plan.fired_ids) == 1
