"""Clean-path correctness of the cross-host layer: always bit-exact.

Every test passes an explicit empty :class:`NetFaultPlan` so the suite
stays deterministic under the CI chaos leg (``REPRO_CHAOS`` arms the
seeded plan only when no explicit plan is given) — the same convention
the pool tests use with ``FaultPlan()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import run_speculative
from repro.dist import (
    DistConfig,
    LocalCluster,
    NetFaultPlan,
    ShardCoordinator,
    run_distributed,
)
from repro.fsm.run import run_reference
from repro.obs.trace import RunTrace

from tests.conftest import make_random_dfa, random_input

NO_FAULTS = NetFaultPlan


@pytest.fixture(scope="module")
def cluster():
    """One 3-agent loopback cluster shared by the module's tests."""
    with LocalCluster(3) as c:
        yield c


@pytest.mark.parametrize("k", [None, 4])
@pytest.mark.parametrize("shards_per_host", [1, 2])
def test_three_agents_bit_exact(cluster, k, shards_per_host):
    dfa = make_random_dfa(24, 8, seed=7)
    inputs = random_input(8, 90_000, seed=11)
    with ShardCoordinator(
        dfa,
        cluster.addresses,
        config=DistConfig(k=k, shards_per_host=shards_per_host),
        net_faults=NO_FAULTS(),
    ) as coord:
        res = coord.run(inputs)
    assert res.final_state == run_reference(dfa, inputs)
    assert not res.degraded and res.ladder == ""
    assert res.num_shards == 3 * shards_per_host


def test_carried_start_and_reuse(cluster):
    """One coordinator serves many runs, including carried start states."""
    dfa = make_random_dfa(16, 6, seed=3)
    with ShardCoordinator(
        dfa, cluster.addresses, net_faults=NO_FAULTS()
    ) as coord:
        carry = None
        whole = random_input(6, 60_000, seed=21)
        for lo in range(0, whole.size, 20_000):
            seg = whole[lo : lo + 20_000]
            res = coord.run(seg, start=carry)
            carry = res.final_state
        assert carry == run_reference(dfa, whole)


def test_empty_and_tiny_inputs(cluster):
    dfa = make_random_dfa(12, 4, seed=5)
    with ShardCoordinator(
        dfa, cluster.addresses, net_faults=NO_FAULTS()
    ) as coord:
        empty = coord.run(np.empty(0, dtype=np.int32))
        assert empty.final_state == dfa.start and empty.num_shards == 0
        one = np.array([2], dtype=np.int32)
        assert coord.run(one).final_state == run_reference(dfa, one)
        few = random_input(4, 2, seed=6)  # fewer items than hosts
        assert coord.run(few).final_state == run_reference(dfa, few)


def test_input_validation(cluster):
    dfa = make_random_dfa(12, 4, seed=5)
    with ShardCoordinator(
        dfa, cluster.addresses, net_faults=NO_FAULTS()
    ) as coord:
        with pytest.raises(ValueError, match="1-D"):
            coord.run(np.zeros((3, 3), dtype=np.int32))
        with pytest.raises(ValueError, match="start state"):
            coord.run(np.zeros(4, dtype=np.int32), start=99)
    with pytest.raises(RuntimeError, match="closed"):
        coord.run(np.zeros(4, dtype=np.int32))
    with pytest.raises(ValueError, match="address"):
        ShardCoordinator(dfa, [], net_faults=NO_FAULTS())


def test_run_distributed_ephemeral_cluster():
    dfa = make_random_dfa(20, 6, seed=9)
    inputs = random_input(6, 50_000, seed=13)
    res = run_distributed(
        dfa, inputs, num_agents=2, net_faults=NO_FAULTS()
    )
    assert res.final_state == run_reference(dfa, inputs)
    assert not res.degraded


def test_engine_backend_dist():
    dfa = make_random_dfa(16, 5, seed=17)
    inputs = random_input(5, 40_000, seed=19)
    res = run_speculative(
        dfa,
        inputs,
        backend="dist",
        dist={"num_agents": 2, "net_faults": NO_FAULTS()},
    )
    assert res.final_state == run_reference(dfa, inputs)
    assert res.config.backend == "dist"
    assert res.accepted == bool(dfa.accepting[res.final_state])


def test_engine_backend_dist_with_standing_coordinator(cluster):
    dfa = make_random_dfa(16, 5, seed=23)
    inputs = random_input(5, 30_000, seed=29)
    with ShardCoordinator(
        dfa, cluster.addresses, net_faults=NO_FAULTS()
    ) as coord:
        res = run_speculative(dfa, inputs, backend="dist", dist=coord)
    assert res.final_state == run_reference(dfa, inputs)


def test_clean_run_emits_dist_counters(cluster):
    dfa = make_random_dfa(16, 6, seed=31)
    inputs = random_input(6, 30_000, seed=37)
    with RunTrace(run_id="clean").activate() as tr:
        with ShardCoordinator(
            dfa, cluster.addresses, net_faults=NO_FAULTS()
        ) as coord:
            res = coord.run(inputs)
    assert res.final_state == run_reference(dfa, inputs)
    counts = {c.name: c.value for c in tr.counters.values()}
    assert counts["dist.shards"] == 3
    assert counts["dist.dispatches"] == 3
    assert counts["dist.shard_maps"] == 3
    assert counts["dist.merge.shard_maps"] == 3
    assert counts.get("dist.publish_bytes", 0) > 0
    # A clean run takes no recovery actions and fires no drills.
    for name in (
        "dist.host_deaths", "dist.hedges", "dist.retries",
        "dist.redispatches", "dist.degraded_runs", "dist.faults_fired",
    ):
        assert name not in counts, name
