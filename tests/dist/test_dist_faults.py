"""Failure drills for the distributed layer: exact under every fault.

Each drill runs a 3-agent topology with a deterministic
:class:`NetFaultPlan`, asserts bit-exactness against the sequential
reference, and checks the drill's ``dist.*`` counter trail — the drills
from ISSUE 9: kill an agent, partition mid-run, duplicate a shard
result, and a slow host triggering hedged re-dispatch, plus every rung
of the degrade ladder.
"""

from __future__ import annotations

import pytest

from repro.core.resilience import DeadlineModel, RetryPolicy
from repro.dist import (
    DistConfig,
    LocalCluster,
    NetFaultPlan,
    ShardCoordinator,
    chaos_net_plan_from_env,
    crash_host,
    delay_message,
    drop_message,
    duplicate_message,
    partition_host,
)
from repro.fsm.run import run_reference
from repro.obs.trace import RunTrace

from tests.conftest import make_random_dfa, random_input

#: Tight supervision so drills resolve in test time, not wall-clock time.
FAST = dict(
    heartbeat_interval_s=0.1,
    heartbeat_timeout_s=1.0,
    deadline=DeadlineModel(
        floor_s=0.4, bytes_per_sec_floor=1e6, safety_factor=4.0
    ),
    retry=RetryPolicy(max_retries=3, backoff_base_s=0.02),
    run_timeout_s=30.0,
)


def run_drill(faults, *, agents=3, config=None, items=90_000, kill=None):
    """One drilled run; returns (result, reference, counters)."""
    dfa = make_random_dfa(24, 8, seed=7)
    inputs = random_input(8, items, seed=11)
    cfg = config if config is not None else DistConfig(**FAST)
    with RunTrace(run_id="drill").activate() as tr:
        with LocalCluster(agents) as cluster:
            with ShardCoordinator(
                dfa,
                cluster.addresses,
                config=cfg,
                net_faults=NetFaultPlan(faults),
            ) as coord:
                if kill is not None:
                    # Abrupt EOF before dispatch: the shard sent to the
                    # dead host never completes and the closed-link event
                    # must reshard it mid-run — deterministic, unlike a
                    # timer racing the (fast) shard computation.
                    cluster.kill(kill)
                res = coord.run(inputs)
    counts = {c.name: c.value for c in tr.counters.values()}
    return res, run_reference(dfa, inputs), counts


def test_drill_crash_agent_reshards_to_survivors():
    res, want, counts = run_drill([crash_host(1, match_type="run_shard")])
    assert res.final_state == want
    assert not res.degraded and res.ladder == "reshard"
    assert counts["dist.net.crashes"] == 1
    assert counts["dist.host_deaths"] == 1
    assert counts["dist.redispatches"] >= 1
    assert counts["dist.resharded_runs"] == 1
    assert res.num_hosts == 2  # the crashed host stays dead
    assert any(e.kind == "reshard" for e in res.recovery_events)


def test_drill_hard_kill_mid_run_reshards():
    """Abrupt socket EOF (agent killed), not a polite crash order."""
    res, want, counts = run_drill([], kill=1)
    assert res.final_state == want
    assert not res.degraded
    assert counts["dist.host_deaths"] == 1
    assert counts.get("dist.redispatches", 0) >= 1


def test_drill_partition_mid_run_recovers_by_deadline():
    res, want, counts = run_drill(
        [partition_host(2, match_type="run_shard", duration_s=0.3)]
    )
    assert res.final_state == want
    assert not res.degraded
    assert counts["dist.net.partitions"] == 1
    assert counts.get("dist.net.partition_drops", 0) >= 1
    # The swallowed dispatch expired and was hedged or retried.
    assert counts["dist.deadline_expirations"] >= 1
    assert counts.get("dist.hedges", 0) + counts.get("dist.retries", 0) >= 1


def test_drill_duplicate_shard_result_dropped():
    res, want, counts = run_drill(
        [duplicate_message(0, direction="recv", match_type="shard_map")]
    )
    assert res.final_state == want
    assert not res.degraded
    assert counts["dist.net.dups"] == 1
    assert counts["dist.duplicates_dropped"] == 1
    assert counts["dist.shard_maps"] == 3  # exactly one result per shard


def test_drill_slow_host_triggers_hedge():
    res, want, counts = run_drill(
        [delay_message(1, direction="recv", match_type="shard_map",
                       seconds=2.5)]
    )
    assert res.final_state == want
    assert not res.degraded
    assert counts["dist.hedges"] == 1
    # Either the hedge or (later) the delayed original answered; the
    # loser's copy is dropped by sequence number when it arrives in-run.
    assert counts["dist.shard_maps"] == 3


def test_drill_dropped_dispatch_retries():
    cfg = DistConfig(**{**FAST, "hedge": False})
    res, want, counts = run_drill(
        [drop_message(2, direction="send", match_type="run_shard")],
        config=cfg,
    )
    assert res.final_state == want
    assert not res.degraded
    assert counts["dist.net.drops"] == 1
    assert counts["dist.retries"] >= 1


def test_ladder_local_pool_rung():
    """All hosts dead + local pool configured -> exact, degraded."""
    cfg = DistConfig(**FAST, local_fallback_workers=2)
    res, want, counts = run_drill(
        [crash_host(0, match_type="run_shard"),
         crash_host(1, match_type="run_shard"),
         crash_host(2, match_type="run_shard")],
        config=cfg,
    )
    assert res.final_state == want
    assert res.degraded and res.ladder == "local_pool"
    assert counts["dist.degraded_runs"] == 1
    assert res.report is not None and res.report.degraded


def test_ladder_inprocess_rung():
    """All hosts dead, no local pool -> in-process engine, exact."""
    res, want, counts = run_drill(
        [crash_host(0, match_type="run_shard"),
         crash_host(1, match_type="run_shard"),
         crash_host(2, match_type="run_shard")]
    )
    assert res.final_state == want
    assert res.degraded and res.ladder == "inprocess"
    assert counts["dist.degraded_runs"] == 1


def test_coordinator_survives_runs_after_host_death():
    """A dead host stays dead; later runs use the survivors, exactly."""
    dfa = make_random_dfa(16, 6, seed=3)
    inputs = random_input(6, 60_000, seed=5)
    with LocalCluster(3) as cluster:
        with ShardCoordinator(
            dfa,
            cluster.addresses,
            config=DistConfig(**FAST),
            net_faults=NetFaultPlan([crash_host(2, match_type="run_shard")]),
        ) as coord:
            first = coord.run(inputs)
            second = coord.run(inputs)
    want = run_reference(dfa, inputs)
    assert first.final_state == want and second.final_state == want
    assert second.num_hosts == 2 and second.ladder == ""


def test_chaos_env_plan_seeding():
    assert chaos_net_plan_from_env(3, env={}) is None
    assert chaos_net_plan_from_env(1, env={"REPRO_CHAOS": "x"}) is None
    plan = chaos_net_plan_from_env(3, env={"REPRO_CHAOS": "tick"})
    assert plan is not None and len(plan) == 1
    spec = plan.specs[0]
    assert spec.kind == "partition" and 0 <= spec.host < 3


@pytest.mark.parametrize("seq", range(3))
def test_chaos_partition_run_is_exact(seq):
    """The CI chaos leg's exact shape: seeded one-partition runs."""
    plan = chaos_net_plan_from_env(3, env={"REPRO_CHAOS": f"ci-{seq}"})
    res, want, counts = run_drill(list(plan.specs))
    assert res.final_state == want
    assert counts["dist.net.partitions"] == 1
