"""Tests for the cross-host distributed layer (repro.dist)."""
