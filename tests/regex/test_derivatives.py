"""Cross-validation: derivative DFAs vs the Thompson/subset pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fsm.alphabet import Alphabet
from repro.fsm.minimize import minimize_dfa
from repro.regex.compile import compile_regex, compile_search
from repro.regex.derivatives import (
    compile_regex_derivatives,
    compile_search_derivatives,
)

AB = Alphabet.from_symbols("abc")

PATTERNS = [
    "a", "abc", "a*", "a+b", "(ab)*c?", "a|bc|cab", "(a|b)*c",
    "[ab]+c{2}", "[^a]b?", "a{2,4}b", "(ab|ba){1,3}", ".a.", "(.+a){2}",
    "",
]


class TestAgreement:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @settings(max_examples=40, deadline=None)
    @given(text=st.text(alphabet="abc", max_size=10))
    def test_anchored_agreement(self, pattern, text):
        d1 = compile_regex(pattern, AB)
        d2 = compile_regex_derivatives(pattern, AB)
        ids = AB.encode(text)
        assert d1.accepts(ids) == d2.accepts(ids), (pattern, text)

    @pytest.mark.parametrize("pattern", ["ab", "a{2}", "(a|b)c"])
    @settings(max_examples=25, deadline=None)
    @given(text=st.text(alphabet="abc", min_size=1, max_size=10))
    def test_search_agreement(self, pattern, text):
        from repro.fsm.run import run_reference_trace

        d1 = compile_search(pattern, AB)
        d2 = compile_search_derivatives(pattern, AB)
        ids = AB.encode(text)
        t1 = d1.accepting[run_reference_trace(d1, ids)]
        t2 = d2.accepting[run_reference_trace(d2, ids)]
        np.testing.assert_array_equal(t1, t2)


class TestSizes:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_minimal_sizes_equal(self, pattern):
        # both pipelines must minimize to the same canonical machine size
        d1 = minimize_dfa(compile_regex(pattern, AB))
        d2 = minimize_dfa(compile_regex_derivatives(pattern, AB))
        assert d1.num_states == d2.num_states, pattern

    def test_derivatives_near_minimal(self):
        # derivative machines are close to minimal without a Hopcroft pass
        for pattern in PATTERNS:
            d = compile_regex_derivatives(pattern, AB)
            m = minimize_dfa(d)
            assert d.num_states <= 3 * max(1, m.num_states), pattern

    def test_paper_regex1_size(self):
        # a second datapoint for Table 5's construction-dependent count
        ab = Alphabet.lowercase()
        d = compile_search_derivatives("(.*l.*i.*k.*e)|(.*a.*p.*p.*l.*e)", ab)
        m = minimize_dfa(d)
        assert m.num_states == 14  # canonical minimal size


class TestGuards:
    def test_max_states_guard(self):
        with pytest.raises(RuntimeError, match="exceeded"):
            compile_regex_derivatives("(a|b){1,12}", AB, max_states=4)

    def test_literal_outside_alphabet(self):
        with pytest.raises(ValueError, match="alphabet"):
            compile_regex_derivatives("z", AB)

    def test_empty_class_rejected_consistently(self):
        # SymbolClass matching nothing lowers to the null language, which
        # derivatives handle gracefully (never matches) rather than raising
        d = compile_regex_derivatives("[^abc]", AB)
        assert not d.accepts(AB.encode("a"))
        assert not d.accepts(AB.encode(""))
