"""Tests for \\d \\w \\s class shorthands (differential vs Python re)."""

import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.fsm.alphabet import Alphabet
from repro.regex.ast import SymbolClass
from repro.regex.compile import compile_regex
from repro.regex.parser import RegexSyntaxError, parse

AB = Alphabet.ascii(128)


class TestParsing:
    def test_digit_shorthand(self):
        node = parse("\\d")
        assert isinstance(node, SymbolClass)
        assert "5" in node.chars and not node.negated

    def test_negated_digit(self):
        node = parse("\\D")
        assert node.negated and "5" in node.chars

    def test_word_and_space(self):
        assert "_" in parse("\\w").chars
        assert "\t" in parse("\\s").chars

    def test_inside_class_unions(self):
        node = parse("[\\dab]")
        assert {"a", "b", "0", "9"} <= node.chars

    def test_negated_class_with_shorthand(self):
        node = parse("[^\\s]")
        assert node.negated and " " in node.chars

    def test_negated_shorthand_inside_class_rejected(self):
        with pytest.raises(RegexSyntaxError, match="negated shorthand"):
            parse("[\\D]")

    def test_plain_escapes_still_work(self):
        from repro.regex.ast import Literal

        assert parse("\\.") == Literal(".")


PATTERNS = [
    "\\d+",
    "\\w+@\\w+",
    "\\s*\\d{2,4}\\s*",
    "[\\dab]+",
    "\\D\\d",
    "(\\w|-)+",
    "\\S+\\s\\S+",
]

texts = st.text(
    alphabet=st.sampled_from(list("ab zQ19_.-\t")), max_size=10
)


@pytest.mark.parametrize("pattern", PATTERNS)
@settings(max_examples=60, deadline=None)
@given(text=texts)
def test_fullmatch_agrees_with_re(pattern, text):
    dfa = compile_regex(pattern, AB)
    mine = dfa.accepts(AB.encode_text(text))
    theirs = re.fullmatch(pattern, text, flags=re.ASCII) is not None
    assert mine == theirs, (pattern, text)
