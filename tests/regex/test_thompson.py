"""Tests for Thompson construction (NFA semantics per node type)."""

import pytest

from repro.fsm.alphabet import Alphabet
from repro.regex.parser import parse
from repro.regex.thompson import to_nfa

AB = Alphabet.from_symbols("abc")


def accepts(pattern: str, text: str) -> bool:
    nfa = to_nfa(parse(pattern), AB)
    return nfa.accepts(AB.encode(text))


class TestBasics:
    def test_literal(self):
        assert accepts("a", "a")
        assert not accepts("a", "b")
        assert not accepts("a", "aa")

    def test_empty(self):
        assert accepts("", "")
        assert not accepts("", "a")

    def test_concat(self):
        assert accepts("ab", "ab")
        assert not accepts("ab", "a")

    def test_alternation(self):
        assert accepts("a|b", "a")
        assert accepts("a|b", "b")
        assert not accepts("a|b", "c")

    def test_dot(self):
        assert accepts(".", "c")
        assert not accepts(".", "")

    def test_class(self):
        assert accepts("[ab]", "b")
        assert not accepts("[ab]", "c")

    def test_negated_class(self):
        assert accepts("[^ab]", "c")
        assert not accepts("[^ab]", "a")

    def test_literal_not_in_alphabet(self):
        with pytest.raises(ValueError, match="not in the target alphabet"):
            to_nfa(parse("z"), AB)

    def test_class_matching_nothing(self):
        with pytest.raises(ValueError, match="matches nothing"):
            to_nfa(parse("[^abc]"), AB)


class TestRepetition:
    def test_star(self):
        for text, want in [("", True), ("a", True), ("aaaa", True), ("ab", False)]:
            assert accepts("a*", text) is want

    def test_plus(self):
        assert not accepts("a+", "")
        assert accepts("a+", "aaa")

    def test_question(self):
        assert accepts("a?", "")
        assert accepts("a?", "a")
        assert not accepts("a?", "aa")

    def test_exact(self):
        assert accepts("a{3}", "aaa")
        assert not accepts("a{3}", "aa")
        assert not accepts("a{3}", "aaaa")

    def test_range(self):
        for n, want in [(1, False), (2, True), (3, True), (4, True), (5, False)]:
            assert accepts("a{2,4}", "a" * n) is want

    def test_open_range(self):
        assert not accepts("a{2,}", "a")
        assert accepts("a{2,}", "a" * 7)

    def test_zero_zero(self):
        assert accepts("a{0,0}", "")
        assert not accepts("a{0,0}", "a")

    def test_zero_lo_bounded(self):
        assert accepts("a{0,2}", "")
        assert accepts("a{0,2}", "aa")
        assert not accepts("a{0,2}", "aaa")

    def test_repeat_of_group(self):
        assert accepts("(ab){2}", "abab")
        assert not accepts("(ab){2}", "ab")

    def test_repeat_of_alternation(self):
        assert accepts("(a|b){3}", "aba")
        assert not accepts("(a|b){3}", "ab")
