"""Differential tests: our regex engine vs Python's ``re`` module."""

import re

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fsm.alphabet import Alphabet
from repro.regex.compile import compile_regex

AB = Alphabet.from_symbols("abc")

# Patterns valid in both engines (no backrefs, no lazy ops).
PATTERNS = [
    "a",
    "abc",
    "a*",
    "a+b",
    "(ab)*c?",
    "a|bc|cab",
    "(a|b)*c",
    "[ab]+c{2}",
    "[^a]b?",
    "a{2,4}b",
    "(ab|ba){1,3}",
    "(a*b){2,}",
    ".a.",
    "(.+a){2}",
]

texts = st.text(alphabet="abc", max_size=12)


@pytest.mark.parametrize("pattern", PATTERNS)
@settings(max_examples=60, deadline=None)
@given(text=texts)
def test_fullmatch_agrees_with_re(pattern, text):
    dfa = compile_regex(pattern, AB)
    mine = dfa.accepts(AB.encode(text))
    theirs = re.fullmatch(pattern, text) is not None
    assert mine == theirs, f"{pattern!r} on {text!r}: dfa={mine} re={theirs}"


@pytest.mark.parametrize("pattern", ["a", "ab", "a+b", "(ab){2}"])
@settings(max_examples=40, deadline=None)
@given(text=texts)
def test_search_endpoint_agrees_with_re(pattern, text):
    from repro.fsm.run import run_reference_trace
    from repro.regex.compile import compile_search

    dfa = compile_search(pattern, AB)
    if not text:
        return
    trace = run_reference_trace(dfa, AB.encode(text))
    mine = set(np.flatnonzero(dfa.accepting[trace]).tolist())
    theirs = {
        m.end() - 1
        for i in range(len(text))
        for m in [re.compile(pattern).match(text, i)]
        if m is not None and m.end() > 0
    }
    assert mine == theirs
