"""Tests for the regex parser."""

import pytest

from repro.regex.ast import Alternation, Concat, Empty, Literal, Repeat, SymbolClass
from repro.regex.parser import RegexSyntaxError, parse


class TestAtoms:
    def test_literal(self):
        assert parse("a") == Literal("a")

    def test_dot(self):
        node = parse(".")
        assert isinstance(node, SymbolClass) and node.negated and not node.chars

    def test_escaped_dot(self):
        assert parse("\\.") == Literal(".")

    def test_escaped_backslash(self):
        assert parse("\\\\") == Literal("\\")

    def test_escape_newline(self):
        assert parse("\\n") == Literal("\n")

    def test_unknown_escape(self):
        with pytest.raises(RegexSyntaxError, match="unknown escape"):
            parse("\\q")

    def test_group(self):
        assert parse("(a)") == Literal("a")

    def test_empty_pattern(self):
        assert parse("") == Empty()

    def test_empty_group(self):
        assert parse("()") == Empty()


class TestRepetition:
    def test_star(self):
        assert parse("a*") == Repeat(Literal("a"), 0, None)

    def test_plus(self):
        assert parse("a+") == Repeat(Literal("a"), 1, None)

    def test_question(self):
        assert parse("a?") == Repeat(Literal("a"), 0, 1)

    def test_exact_count(self):
        assert parse("a{4}") == Repeat(Literal("a"), 4, 4)

    def test_range(self):
        assert parse("a{2,5}") == Repeat(Literal("a"), 2, 5)

    def test_open_range(self):
        assert parse("a{3,}") == Repeat(Literal("a"), 3, None)

    def test_inverted_bounds(self):
        with pytest.raises(RegexSyntaxError):
            parse("a{5,2}")

    def test_double_star(self):
        assert parse("a**") == Repeat(Repeat(Literal("a"), 0, None), 0, None)

    def test_nothing_to_repeat(self):
        with pytest.raises(RegexSyntaxError, match="nothing to repeat"):
            parse("*a")

    def test_bounds_need_number(self):
        with pytest.raises(RegexSyntaxError, match="number"):
            parse("a{x}")


class TestStructure:
    def test_concat(self):
        assert parse("ab") == Concat((Literal("a"), Literal("b")))

    def test_alternation(self):
        assert parse("a|b") == Alternation((Literal("a"), Literal("b")))

    def test_precedence_alt_lowest(self):
        node = parse("ab|c")
        assert isinstance(node, Alternation)
        assert node.options[0] == Concat((Literal("a"), Literal("b")))

    def test_precedence_repeat_highest(self):
        assert parse("ab*") == Concat((Literal("a"), Repeat(Literal("b"), 0, None)))

    def test_group_overrides(self):
        assert parse("(ab)*") == Repeat(Concat((Literal("a"), Literal("b"))), 0, None)

    def test_empty_alternative(self):
        node = parse("a|")
        assert node == Alternation((Literal("a"), Empty()))

    def test_unbalanced_paren(self):
        with pytest.raises(RegexSyntaxError):
            parse("(a")

    def test_stray_close_paren(self):
        with pytest.raises(RegexSyntaxError):
            parse("a)")


class TestCharClass:
    def test_simple(self):
        assert parse("[ab]") == SymbolClass(frozenset("ab"))

    def test_range(self):
        assert parse("[a-d]") == SymbolClass(frozenset("abcd"))

    def test_negated(self):
        assert parse("[^ab]") == SymbolClass(frozenset("ab"), negated=True)

    def test_literal_dash_at_end(self):
        assert parse("[a-]") == SymbolClass(frozenset("a-"))

    def test_escaped_in_class(self):
        assert parse("[\\]]") == SymbolClass(frozenset("]"))

    def test_inverted_range(self):
        with pytest.raises(RegexSyntaxError, match="inverted range"):
            parse("[z-a]")

    def test_unterminated(self):
        with pytest.raises(RegexSyntaxError, match="unterminated"):
            parse("[ab")

    def test_first_bracket_literal(self):
        # ']' right after '[' is a literal member, per POSIX convention
        assert parse("[]a]") == SymbolClass(frozenset("]a"))


class TestPaperPatterns:
    def test_regex1_parses(self):
        node = parse("(.*l.*i.*k.*e)|(.*a.*p.*p.*l.*e)")
        assert isinstance(node, Alternation)

    def test_regex2_parses(self):
        node = parse("(.+,.+\\.){4}|(.+,){4}|(.+\\.){4}")
        assert isinstance(node, Alternation)
        assert all(isinstance(o, Repeat) and o.lo == o.hi == 4 for o in node.options)
