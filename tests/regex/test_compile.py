"""Tests for regex compilation and input-class compression."""

import numpy as np

from repro.fsm.alphabet import Alphabet
from repro.regex.compile import compile_regex, compile_search, compress_inputs

AB = Alphabet.from_symbols("abc")


class TestCompileRegex:
    def test_anchored_match(self):
        dfa = compile_regex("ab*c", AB)
        assert dfa.accepts(AB.encode("abbbc"))
        assert not dfa.accepts(AB.encode("abb"))

    def test_minimize_flag(self):
        big = compile_regex("(a|a|a)b", AB, minimize=False)
        small = compile_regex("(a|a|a)b", AB, minimize=True)
        assert small.num_states <= big.num_states

    def test_name_attached(self):
        assert compile_regex("a", AB, name="x").name == "x"

    def test_alphabet_attached(self):
        assert compile_regex("a", AB).alphabet is AB


class TestCompileSearch:
    def test_accepting_when_match_ends_at_cursor(self):
        dfa = compile_search("ab", AB)
        assert dfa.accepts(AB.encode("ccab"))
        assert not dfa.accepts(AB.encode("abc"))

    def test_streaming_positions(self):
        from repro.fsm.run import run_reference_trace

        dfa = compile_search("ab", AB)
        trace = run_reference_trace(dfa, AB.encode("ababc"))
        hits = np.flatnonzero(dfa.accepting[trace])
        np.testing.assert_array_equal(hits, [1, 3])  # matches end at 1, 3


class TestCompressInputs:
    def test_compresses_identical_columns(self):
        # 'ab' searcher over abc: b and c behave differently from a, but do
        # b and c collapse? For pattern 'a', yes: everything except 'a' is
        # equivalent.
        dfa = compile_search("a", AB)
        comp = compress_inputs(dfa)
        assert comp.num_classes == 2

    def test_class_map_shape(self):
        dfa = compile_search("a", AB)
        comp = compress_inputs(dfa)
        assert comp.class_of.shape == (3,)

    def test_equivalent_behaviour(self):
        dfa = compile_search("ab", AB)
        comp = compress_inputs(dfa)
        rng = np.random.default_rng(0)
        for _ in range(50):
            raw = rng.integers(0, 3, size=rng.integers(0, 20))
            assert dfa.run(raw) == comp.dfa.run(comp.encode_inputs(raw))

    def test_no_compression_when_all_distinct(self):
        # Pattern that distinguishes all three letters.
        dfa = compile_search("abc|bca|cab", AB)
        comp = compress_inputs(dfa)
        assert comp.num_classes == 3

    def test_first_appearance_numbering(self):
        dfa = compile_search("b", AB)
        comp = compress_inputs(dfa)
        # symbol 0 ('a') gets class 0 by first-appearance convention
        assert comp.class_of[0] == 0

    def test_transducer_columns_respected(self):
        from repro.fsm.dfa import DFA

        table = np.array([[0, 1], [0, 1], [1, 0]], dtype=np.int32)
        emit = np.array([[5, -1], [-1, -1], [5, -1]], dtype=np.int32)
        dfa = DFA(table=table, start=0, accepting=np.zeros(2, dtype=bool), emit=emit)
        comp = compress_inputs(dfa)
        # symbols 0 and 1 share a table row but differ in emission
        assert comp.num_classes == 3

    def test_paper_class_counts(self):
        from repro.apps.paper_regexes import build_regex1, build_regex2

        r1, class1 = build_regex1()
        assert r1.num_inputs == 7  # {a,e,i,k,l,p} + other
        assert class1 is not None
        r2, _ = build_regex2()
        assert r2.num_inputs == 3  # {',', '.', other}
