"""Bit-exactness of coalesced batch execution against running alone.

The serving layer's correctness rests on one property: concatenating many
independent requests into a single seeded chunk plan never changes any
request's answer. These tests drive :func:`repro.core.engine.run_speculative_batch`
(in-process) and :meth:`repro.core.mp_executor.ScaleoutPool.run_batch`
(worker processes, including a mid-batch worker kill) and compare every
per-request final state against the sequential reference *and* against
individual ``run_speculative`` calls across kernel/collapse/schedule
settings.
"""

import numpy as np
import pytest

from repro.apps import APPLICATIONS
from repro.core import faultinject as fi
from repro.core.engine import run_speculative, run_speculative_batch
from repro.core.kernels import plan_kernel
from repro.core.mp_executor import ScaleoutPool
from repro.fsm.run import run_segment
from tests.conftest import make_random_dfa, random_input


def windows(corpus, sizes, seed=0):
    """Random windows of the corpus with the given sizes (0 = empty)."""
    rng = np.random.default_rng(seed)
    out = []
    for n in sizes:
        lo = int(rng.integers(0, corpus.size - n + 1)) if n else 0
        out.append(corpus[lo : lo + n])
    return out


SIZES = [4096, 0, 1, 7000, 2048, 513, 12000, 64, 3000, 0, 8191, 2500]


class TestEngineBatch:
    @pytest.mark.parametrize("app", ["div7", "regex1"])
    @pytest.mark.parametrize("k", [1, 3, None])
    def test_matches_reference(self, app, k):
        dfa, corpus = APPLICATIONS[app].build(40_000, seed=3)
        segs = windows(corpus, SIZES, seed=k or 99)
        res = run_speculative_batch(dfa, segs, k=k, chunk_items=2048)
        assert res.num_requests == len(segs)
        for r, seg in enumerate(segs):
            assert res.final_states[r] == run_segment(dfa, seg, dfa.start)
            assert bool(res.accepted[r]) == bool(
                dfa.accepting[res.final_states[r]]
            )

    @pytest.mark.parametrize(
        "kernel,collapse,schedule",
        [
            ("lockstep", "off", "barrier"),
            ("stride4", "off", "barrier"),
            ("lockstep", "auto", "ooo"),
            ("auto", "auto", "ooo"),
        ],
    )
    def test_matches_individual_runs(self, kernel, collapse, schedule):
        # Whatever kernel/collapse/schedule an individual run uses, the
        # coalesced batch must agree with it request by request.
        dfa, corpus = APPLICATIONS["regex1"].build(30_000, seed=4)
        segs = windows(corpus, [5000, 2048, 9000, 1, 4096, 700], seed=5)
        res = run_speculative_batch(dfa, segs, k=3, chunk_items=1024)
        for r, seg in enumerate(segs):
            if seg.size == 0:
                assert res.final_states[r] == dfa.start
                continue
            alone = run_speculative(
                dfa,
                seg,
                k=3,
                num_blocks=1,
                threads_per_block=32,
                price=False,
                measure_success=False,
                kernel=kernel,
                collapse=collapse,
                schedule=schedule,
            )
            assert res.final_states[r] == alone.final_state

    def test_seeded_starts(self):
        dfa = make_random_dfa(9, 3, seed=11)
        rng = np.random.default_rng(12)
        segs = [random_input(3, n, seed=13 + i) for i, n in enumerate(SIZES)]
        starts = [int(rng.integers(0, 9)) for _ in segs]
        res = run_speculative_batch(
            dfa, segs, starts=starts, k=2, chunk_items=1500
        )
        for r, (seg, s0) in enumerate(zip(segs, starts)):
            assert res.final_states[r] == run_segment(dfa, seg, s0)

    def test_kernel_plan_and_prior(self):
        dfa, corpus = APPLICATIONS["div7"].build(20_000, seed=6)
        kplan = plan_kernel(dfa, chunk_len=2048, num_chunks=8, k=3)
        segs = windows(corpus, [6000, 3000, 2048, 100], seed=7)
        res = run_speculative_batch(
            dfa, segs, k=3, chunk_items=2048, kernel_plan=kplan
        )
        for r, seg in enumerate(segs):
            assert res.final_states[r] == run_segment(dfa, seg, dfa.start)

    def test_edge_batches(self):
        dfa = make_random_dfa(5, 2, seed=30)
        empty = run_speculative_batch(dfa, [], k=2)
        assert empty.num_requests == 0
        all_empty = run_speculative_batch(
            dfa, [np.empty(0, np.int32)] * 3, starts=[1, 2, 3 % 5], k=2
        )
        assert list(all_empty.final_states) == [1, 2, 3]
        one = run_speculative_batch(
            dfa, [random_input(2, 5000, seed=31)], k=2, chunk_items=512
        )
        assert one.final_states[0] == run_segment(
            dfa, random_input(2, 5000, seed=31), dfa.start
        )


class TestPoolBatch:
    def _case(self, seed=40):
        dfa, corpus = APPLICATIONS["div7"].build(40_000, seed=seed)
        segs = windows(corpus, [9000, 0, 4096, 1, 12_000, 2500, 700], seed=seed)
        ref = [run_segment(dfa, s, dfa.start) for s in segs]
        return dfa, segs, ref

    def test_matches_reference_and_warm_reuse(self):
        dfa, segs, ref = self._case()
        with ScaleoutPool(
            dfa, num_workers=3, k=3, sub_chunks_per_worker=8
        ) as pool:
            cold = pool.run_batch(segs)
            warm = pool.run_batch(segs)
        for res in (cold, warm):
            assert res.num_requests == len(segs)
            assert list(res.final_states) == ref

    def test_seeded_starts(self):
        dfa, segs, _ = self._case(seed=41)
        rng = np.random.default_rng(42)
        starts = [int(rng.integers(0, dfa.num_states)) for _ in segs]
        ref = [run_segment(dfa, s, s0) for s, s0 in zip(segs, starts)]
        with ScaleoutPool(
            dfa, num_workers=2, k=3, sub_chunks_per_worker=8
        ) as pool:
            res = pool.run_batch(segs, starts=starts)
        assert list(res.final_states) == ref

    def test_worker_killed_mid_batch_recovers(self):
        dfa, segs, ref = self._case(seed=43)
        plan = fi.FaultPlan([fi.kill_worker(1, at_task=0)])
        with ScaleoutPool(
            dfa, num_workers=3, k=3, sub_chunks_per_worker=8, fault_plan=plan
        ) as pool:
            res = pool.run_batch(segs)
        assert list(res.final_states) == ref
        assert res.degraded is False
        assert res.recovery is not None
        assert res.recovery.worker_deaths >= 1
