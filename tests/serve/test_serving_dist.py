"""The serving layer on the cross-host executor (ISSUE 9 tentpole)."""

from __future__ import annotations

import asyncio

import pytest

from repro.fsm.run import run_reference
from repro.serve import FSMServer, ServeConfig

from tests.conftest import make_random_dfa, random_input


def test_dist_executor_rounds_are_exact():
    async def main():
        dfa = make_random_dfa(16, 5, seed=4)
        server = FSMServer(
            ServeConfig(
                executor="dist",
                dist_agents=2,
                round_budget_items=1 << 14,
            )
        )
        server.register_tenant("t0", dfa)
        await server.start()
        jobs = [random_input(5, 30_000, seed=s) for s in (1, 2, 3)]
        resps = await asyncio.gather(
            *(server.submit("t0", j) for j in jobs)
        )
        await server.close()
        for job, resp in zip(jobs, resps):
            assert resp.status == "ok"
            assert resp.final_state == run_reference(dfa, job)
            assert resp.rounds > 1  # continuous batching still carves
            assert not resp.degraded

    asyncio.run(main())


def test_dist_executor_machine_shared_and_closed():
    async def main():
        dfa = make_random_dfa(12, 4, seed=6)
        server = FSMServer(ServeConfig(executor="dist", dist_agents=2))
        server.register_tenant("a", dfa)
        server.register_tenant("b", dfa)  # same fingerprint, shared
        assert len(server._machines) == 1
        ms = next(iter(server._machines.values()))
        assert ms.coordinator is not None and ms.cluster is not None
        await server.start()
        sym = random_input(4, 10_000, seed=7)
        resp = await server.submit("a", sym)
        await server.close()
        assert resp.final_state == run_reference(dfa, sym)
        assert ms.coordinator is None and ms.cluster is None

    asyncio.run(main())


def test_invalid_executor_rejected():
    with pytest.raises(ValueError, match="executor"):
        FSMServer(ServeConfig(executor="bogus"))
