"""Client-side timeout and bounded-retry behaviour (ISSUE 9 satellite)."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import (
    FSMServer,
    ServeClient,
    ServeConfig,
    ServeTimeoutError,
)

from tests.conftest import make_random_dfa, random_input
from repro.fsm.run import run_reference


def test_match_without_timeout_still_exact():
    async def main():
        dfa = make_random_dfa(12, 4, seed=1)
        server = FSMServer(ServeConfig())
        tenant = server.register_tenant("t", dfa)
        client = ServeClient(server, tenant)
        await server.start()
        sym = random_input(4, 20_000, seed=2)
        resp = await client.match(sym)
        await server.close()
        assert resp.status == "ok"
        assert resp.final_state == run_reference(dfa, sym)

    asyncio.run(main())


def test_timeout_raises_typed_error_with_context():
    async def main():
        dfa = make_random_dfa(12, 4, seed=1)
        server = FSMServer(ServeConfig())
        tenant = server.register_tenant("t", dfa)
        client = ServeClient(server, tenant)
        # Server never started: the submission can never complete, so
        # every attempt must time out deterministically.
        sym = random_input(4, 1_000, seed=2)
        with pytest.raises(ServeTimeoutError) as ei:
            await client.match(
                sym, timeout_s=0.05, max_retries=2, backoff_base_s=0.01
            )
        err = ei.value
        assert isinstance(err, TimeoutError)
        assert err.tenant == "t" and err.attempts == 3
        assert err.timeout_s == pytest.approx(0.05)
        counts = {
            c.name: c.value for c in server.trace.counters.values()
        }
        assert counts["serve.client_timeouts"] == 3
        assert counts["serve.client_retries"] == 2
        await server.close()

    asyncio.run(main())


def test_retry_succeeds_after_late_start():
    """First attempt times out; the server starts; a retry completes."""

    async def main():
        dfa = make_random_dfa(12, 4, seed=1)
        server = FSMServer(ServeConfig())
        tenant = server.register_tenant("t", dfa)
        client = ServeClient(server, tenant)
        sym = random_input(4, 5_000, seed=2)

        async def late_start():
            await asyncio.sleep(0.15)
            await server.start()

        starter = asyncio.create_task(late_start())
        resp = await client.match(
            sym, timeout_s=0.4, max_retries=5, backoff_base_s=0.05
        )
        await starter
        await server.close()
        assert resp.status == "ok"
        assert resp.final_state == run_reference(dfa, sym)

    asyncio.run(main())


def test_generous_timeout_never_retries():
    async def main():
        dfa = make_random_dfa(12, 4, seed=1)
        server = FSMServer(ServeConfig())
        tenant = server.register_tenant("t", dfa)
        client = ServeClient(server, tenant)
        await server.start()
        sym = random_input(4, 10_000, seed=2)
        resp = await client.match(sym, timeout_s=30.0, max_retries=3)
        await server.close()
        assert resp.status == "ok"
        counts = {
            c.name: c.value for c in server.trace.counters.values()
        }
        assert "serve.client_timeouts" not in counts
        assert resp.final_state == run_reference(dfa, sym)

    asyncio.run(main())
