"""Asyncio serving-layer tests: correctness, admission, deadlines, faults.

No pytest-asyncio in the image — each test is a plain function driving a
coroutine with ``asyncio.run``. The scheduler's priority behavior is
additionally unit-tested synchronously (no event loop) so deadline
ordering is deterministic rather than timing-dependent.
"""

import asyncio

import numpy as np

import pytest

from repro.apps import APPLICATIONS
from repro.core import faultinject as fi
from repro.fsm.run import run_segment
from repro.serve import (
    FSMServer,
    QueuedRequest,
    ServeClient,
    ServeConfig,
    WeightedFairScheduler,
    carve_round,
    zipf_workload,
)


def _req(tenant, fp="m0", size=100, deadline_ts=None, rid="r"):
    return QueuedRequest(
        tenant=tenant,
        fingerprint=fp,
        request_id=rid,
        symbols=None,
        size=size,
        carry_state=0,
        deadline_ts=deadline_ts,
    )


class TestSchedulerUnit:
    def test_wfq_weights_and_order(self):
        sched = WeightedFairScheduler()
        sched.add_tenant("heavy", weight=2.0)
        sched.add_tenant("light", weight=1.0)
        for i in range(4):
            assert sched.try_enqueue(_req("heavy", size=100, rid=f"h{i}"))
            assert sched.try_enqueue(_req("light", size=100, rid=f"l{i}"))
        order = []
        while sched.depth:
            order.extend(
                r.request_id
                for r in sched.select_round(max_requests=1, now=0.0)
            )
        # weight 2 finishes two requests per virtual unit vs one: heavy's
        # first two tags (50, 100) beat light's first (100, tie broken
        # deterministically by min()), and heavy never falls behind.
        assert order.index("h1") < order.index("l1")
        assert order.index("h3") < order.index("l3")

    def test_deadline_urgency_preempts_fair_order(self):
        sched = WeightedFairScheduler(predict_service_s=lambda items: 1.0)
        sched.add_tenant("a")
        sched.add_tenant("b")
        # a enqueues first (smaller finish tag); b's deadline is nearer
        # than its predicted service time, so b must preempt.
        assert sched.try_enqueue(_req("a", size=10, rid="fair"))
        assert sched.try_enqueue(
            _req("b", size=1000, deadline_ts=0.5, rid="urgent")
        )
        sel = sched.select_round(max_requests=1, now=0.0)
        assert [r.request_id for r in sel] == ["urgent"]
        # With ample slack the same request is not urgent: fair order wins.
        sched2 = WeightedFairScheduler(predict_service_s=lambda items: 1.0)
        sched2.add_tenant("a")
        sched2.add_tenant("b")
        sched2.try_enqueue(_req("a", size=10, rid="fair"))
        sched2.try_enqueue(_req("b", size=1000, deadline_ts=99.0, rid="late"))
        sel = sched2.select_round(max_requests=1, now=0.0)
        assert [r.request_id for r in sel] == ["fair"]

    def test_admission_bounds(self):
        sched = WeightedFairScheduler(
            max_queue_depth=3, max_tenant_queue_depth=2
        )
        sched.add_tenant("a")
        sched.add_tenant("b")
        assert sched.try_enqueue(_req("a", rid="a0"))
        assert sched.try_enqueue(_req("a", rid="a1"))
        assert not sched.try_enqueue(_req("a", rid="a2"))  # tenant bound
        assert sched.try_enqueue(_req("b", rid="b0"))
        assert not sched.try_enqueue(_req("b", rid="b1"))  # global bound
        assert sched.depth == 3

    def test_round_fill_coalesces_same_machine_only(self):
        sched = WeightedFairScheduler()
        for t in ("a", "b", "c"):
            sched.add_tenant(t)
        sched.try_enqueue(_req("a", fp="m0", rid="a0"))
        sched.try_enqueue(_req("a", fp="m0", rid="a1"))
        sched.try_enqueue(_req("b", fp="m1", rid="b0"))
        sched.try_enqueue(_req("c", fp="m0", rid="c0"))
        sel = sched.select_round(max_requests=8, now=0.0)
        assert sorted(r.request_id for r in sel) == ["a0", "a1", "c0"]
        assert sched.depth == 1  # b0 waits for an m1 round

    def test_requeue_keeps_front_position(self):
        sched = WeightedFairScheduler()
        sched.add_tenant("a")
        sched.try_enqueue(_req("a", rid="first", size=1000))
        sched.try_enqueue(_req("a", rid="second", size=10))
        (head,) = sched.select_round(max_requests=1, now=0.0)
        head.offset = 500  # half-executed; server re-queues the remainder
        sched.requeue(head)
        (again,) = sched.select_round(max_requests=1, now=0.0)
        assert again.request_id == "first"

    def test_carve_round_shares_budget(self):
        reqs = [_req("a", size=n, rid=str(n)) for n in (10_000, 3000, 50)]
        rnd = carve_round(reqs, budget_items=6000, chunk_items=512)
        takes = dict((r.request_id, t) for r, t in rnd.entries)
        assert takes == {"10000": 2000, "3000": 2000, "50": 50}
        assert rnd.total_items == 4050
        with pytest.raises(ValueError):
            carve_round([], budget_items=100, chunk_items=10)


def _serve_case(num_requests=36, seed=0):
    """Three tenants over two machines (alpha+gamma share div7)."""
    div7, div7_corpus = APPLICATIONS["div7"].build(20_000, seed=1)
    regex, regex_corpus = APPLICATIONS["regex1"].build(20_000, seed=2)
    corpora = {
        "alpha": div7_corpus,
        "beta": regex_corpus,
        "gamma": div7_corpus,
    }
    machines = {"alpha": div7, "beta": regex, "gamma": div7}
    workload = zipf_workload(
        corpora, num_requests=num_requests, mean_items=900, seed=seed
    )
    return machines, workload


class TestServing:
    def test_multi_tenant_shared_dfa_bit_exact(self):
        machines, workload = _serve_case()

        async def drive():
            # Small rounds force carving + carry-state across rounds.
            server = FSMServer(
                ServeConfig(
                    round_budget_items=2048,
                    chunk_items=512,
                    max_batch_requests=6,
                )
            )
            tenants = {
                n: server.register_tenant(n, machines[n])
                for n in ("alpha", "beta", "gamma")
            }
            assert tenants["alpha"].fingerprint == tenants["gamma"].fingerprint
            await server.start()
            clients = {n: ServeClient(server, t) for n, t in tenants.items()}
            resp = await asyncio.gather(
                *(clients[w.tenant].match(w.symbols) for w in workload)
            )
            counters = dict(server.trace.counters_with_prefix("serve."))
            await server.close()
            return resp, counters

        responses, counters = asyncio.run(drive())
        for w, r in zip(workload, responses):
            assert r.status == "ok"
            dfa = machines[w.tenant]
            assert r.final_state == run_segment(dfa, w.symbols, dfa.start)
            assert r.accepted == bool(dfa.accepting[r.final_state])
        assert counters["serve.requests"] == len(workload)
        assert counters["serve.machines"] == 2  # alpha+gamma coalesced
        assert counters["serve.coalesced"] > 0
        assert counters["serve.rounds"] > 1  # carving forced multi-round

    def test_admission_shed_then_drain(self):
        machines, workload = _serve_case(num_requests=8)

        async def drive():
            server = FSMServer(
                ServeConfig(max_queue_depth=4, max_tenant_queue_depth=4)
            )
            tenants = {
                n: server.register_tenant(n, machines[n])
                for n in ("alpha", "beta", "gamma")
            }
            # Not started: submissions queue up to the bound, the rest shed.
            tasks = [
                asyncio.create_task(
                    server.submit(tenants[w.tenant], w.symbols)
                )
                for w in workload
            ]
            await asyncio.sleep(0)  # let every submit hit admission
            assert server.queue_depth == 4
            await server.start()
            responses = await asyncio.gather(*tasks)
            counters = dict(server.trace.counters_with_prefix("serve."))
            await server.close()
            return responses, counters

        responses, counters = asyncio.run(drive())
        ok = [r for r in responses if r.status == "ok"]
        shed = [r for r in responses if r.status == "shed"]
        assert len(ok) == 4 and len(shed) == 4
        assert all("bound" in r.shed_reason for r in shed)
        assert counters["serve.shed"] == 4
        for w, r in zip(workload, responses):
            if r.status == "ok":
                dfa = machines[w.tenant]
                assert r.final_state == run_segment(dfa, w.symbols, dfa.start)

    def test_deadline_miss_reported(self):
        machines, workload = _serve_case(num_requests=4)
        # Only div7-alphabet requests are valid for the alpha tenant.
        job = next(w for w in workload if w.tenant in ("alpha", "gamma"))

        async def drive():
            server = FSMServer(ServeConfig())
            t = server.register_tenant("alpha", machines["alpha"])
            await server.start()
            resp = await server.submit(t, job.symbols, deadline_s=1e-9)
            counters = dict(server.trace.counters_with_prefix("serve."))
            await server.close()
            return resp, counters

        resp, counters = asyncio.run(drive())
        assert resp.status == "ok"  # late, not cancelled — still exact
        dfa = machines["alpha"]
        assert resp.final_state == run_segment(dfa, job.symbols, dfa.start)
        assert resp.deadline_missed is True
        assert counters["serve.deadline_miss"] == 1

    def test_pool_executor_end_to_end(self):
        machines, workload = _serve_case(num_requests=10)

        async def drive():
            server = FSMServer(
                ServeConfig(
                    executor="pool",
                    pool_workers=2,
                    round_budget_items=1 << 14,
                    chunk_items=1 << 11,
                )
            )
            tenants = {
                n: server.register_tenant(n, machines[n])
                for n in ("alpha", "beta", "gamma")
            }
            await server.start()
            resp = await asyncio.gather(
                *(
                    server.submit(tenants[w.tenant], w.symbols)
                    for w in workload
                )
            )
            await server.close()
            return resp

        responses = asyncio.run(drive())
        for w, r in zip(workload, responses):
            assert r.status == "ok"
            dfa = machines[w.tenant]
            assert r.final_state == run_segment(dfa, w.symbols, dfa.start)

    def test_pool_worker_killed_mid_batch_recovers(self):
        machines, workload = _serve_case(num_requests=8, seed=3)
        plan = fi.FaultPlan([fi.kill_worker(1, at_task=0)])

        async def drive():
            server = FSMServer(
                ServeConfig(
                    executor="pool",
                    pool_workers=3,
                    pool_fault_plan=plan,
                    round_budget_items=1 << 14,
                    chunk_items=1 << 11,
                )
            )
            t = server.register_tenant("alpha", machines["alpha"])
            await server.start()
            resp = await asyncio.gather(
                *(
                    server.submit(t, w.symbols)
                    for w in workload
                    if w.tenant == "alpha"
                )
            )
            await server.close()
            return resp

        responses = asyncio.run(drive())
        assert responses  # the zipf head tenant always draws requests
        dfa = machines["alpha"]
        for w, r in zip(
            [w for w in workload if w.tenant == "alpha"], responses
        ):
            assert r.status == "ok"
            assert r.final_state == run_segment(dfa, w.symbols, dfa.start)
            assert r.degraded is False  # supervised retry, not fallback

    def test_serve_observability_catalog(self):
        machines, workload = _serve_case(num_requests=6)
        jobs = [w for w in workload if w.tenant in ("alpha", "gamma")]
        assert jobs  # zipf's head tenant always draws requests

        async def drive():
            server = FSMServer(ServeConfig())
            t = server.register_tenant("alpha", machines["alpha"])
            await server.start()
            await asyncio.gather(
                *(server.submit(t, w.symbols) for w in jobs)
            )
            trace = server.trace
            await server.close()
            return trace

        trace = asyncio.run(drive())
        counters = trace.counters_with_prefix("serve.")
        for name in ("serve.requests", "serve.rounds", "serve.items"):
            assert name in counters
        for hist in (
            "serve.queue_wait_s",
            "serve.service_s",
            "serve.batch_size",
            "serve.round_items",
        ):
            assert trace.histograms[hist].count > 0

    def test_bad_symbols_rejected_and_round_failure_isolated(self):
        machines, workload = _serve_case(num_requests=4)
        good = next(w for w in workload if w.tenant in ("alpha", "gamma"))

        async def drive():
            server = FSMServer(ServeConfig())
            t = server.register_tenant("alpha", machines["alpha"])
            await server.start()
            # Out-of-alphabet ids are rejected at submission time.
            with pytest.raises(ValueError, match="out of range"):
                await server.submit(t, np.full(64, 9, dtype=np.int32))
            # An execution failure fails exactly its round's futures and
            # leaves the loop serving: the next request still completes.
            real_execute = server._execute_round
            def boom(rnd):
                server._execute_round = real_execute
                raise RuntimeError("injected round failure")
            server._execute_round = boom
            with pytest.raises(RuntimeError, match="injected"):
                await server.submit(t, good.symbols)
            resp = await server.submit(t, good.symbols)
            counters = dict(server.trace.counters_with_prefix("serve."))
            await server.close()
            return resp, counters

        resp, counters = asyncio.run(drive())
        assert resp.status == "ok"
        dfa = machines["alpha"]
        assert resp.final_state == run_segment(dfa, good.symbols, dfa.start)
        assert counters["serve.round_errors"] == 1

    def test_registration_errors(self):
        machines, _ = _serve_case(num_requests=1)

        async def drive():
            server = FSMServer(ServeConfig())
            server.register_tenant("alpha", machines["alpha"])
            with pytest.raises(ValueError):
                server.register_tenant("alpha", machines["alpha"])
            with pytest.raises(KeyError):
                await server.submit("nobody", np.zeros(4, np.int32))
            with pytest.raises(ValueError):
                FSMServer(ServeConfig(executor="bogus"))
            await server.close()

        asyncio.run(drive())


class TestServingGroups:
    def test_group_members_coalesce_bit_exact(self):
        from repro.fsm import DFA

        num_inputs = 12
        machines = {
            f"g{p}": DFA.random(5 + p, num_inputs, rng=40 + p, name=f"g{p}")
            for p in range(3)
        }
        rng = np.random.default_rng(7)
        workload = []
        for i in range(9):
            # One request long enough to carve across several rounds.
            n = 9000 if i == 4 else int(rng.integers(300, 3000))
            workload.append(
                (
                    f"g{i % 3}",
                    rng.integers(0, num_inputs, size=n).astype(np.int64),
                )
            )

        async def drive():
            server = FSMServer(
                ServeConfig(
                    round_budget_items=2048,
                    chunk_items=512,
                    max_batch_requests=8,
                )
            )
            tenants = dict(
                zip(machines, server.register_group(list(machines.items())))
            )
            assert len({t.fingerprint for t in tenants.values()}) == 1
            await server.start()
            resp = await asyncio.gather(
                *(server.submit(tenants[n], sym) for n, sym in workload)
            )
            counters = dict(server.trace.counters_with_prefix("serve."))
            await server.close()
            return resp, counters

        responses, counters = asyncio.run(drive())
        for (name, sym), r in zip(workload, responses):
            assert r.status == "ok"
            dfa = machines[name]
            assert r.final_state == run_segment(dfa, sym, dfa.start)
            assert r.accepted == bool(dfa.accepting[r.final_state])
        assert counters["serve.groups"] == 1
        assert counters["serve.machines"] == 1
        assert counters["serve.group_rounds"] >= 1
        assert counters["serve.coalesced"] > 0
        assert counters["serve.rounds"] > 1

    def test_group_validation(self):
        from repro.fsm import DFA

        a = DFA.random(4, 6, rng=1, name="a")
        b = DFA.random(5, 6, rng=2, name="b")

        async def drive():
            server = FSMServer(ServeConfig())
            with pytest.raises(ValueError):
                server.register_group([])
            with pytest.raises(ValueError):
                server.register_group([("x", a), ("x", b)])
            with pytest.raises(ValueError):
                server.register_group([("x", a)], weights=[1.0, 2.0])
            (tx,) = server.register_group([("x", a)])
            with pytest.raises(ValueError):
                server.register_group([("x", a), ("y", b)])
            await server.start()
            # Raw symbols outside the shared alphabet are rejected even
            # though joint compaction may use fewer classes internally.
            with pytest.raises(ValueError):
                await server.submit(tx, np.array([0, 6], dtype=np.int64))
            resp = await server.submit(tx, np.array([0, 5], dtype=np.int64))
            await server.close()
            return resp

        resp = asyncio.run(drive())
        assert resp.status == "ok"
        assert resp.final_state == run_segment(
            a, np.array([0, 5], dtype=np.int64), a.start
        )
