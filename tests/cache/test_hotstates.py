"""Tests for the hot-state shared-memory cache plan."""

import numpy as np
import pytest

from repro.cache.hotstates import plan_hot_states
from repro.fsm.dfa import DFA
from tests.conftest import make_random_dfa


class TestPlanning:
    def test_everything_fits_small_machine(self):
        dfa = make_random_dfa(10, 4, seed=0)
        cache = plan_hot_states(dfa, shared_budget_bytes=48 * 1024)
        assert cache.rows_resident == 10

    def test_budget_limits_rows(self):
        dfa = make_random_dfa(100, 32, seed=1)  # 128B rows
        cache = plan_hot_states(dfa, shared_budget_bytes=2048)
        assert 0 < cache.rows_resident <= 2048 // 128
        assert cache.shared_bytes <= 2048

    def test_zero_budget(self):
        dfa = make_random_dfa(10, 4, seed=0)
        cache = plan_hot_states(dfa, shared_budget_bytes=0)
        assert cache.rows_resident == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            plan_hot_states(make_random_dfa(4, 2, seed=0), shared_budget_bytes=-1)

    def test_hottest_states_selected(self):
        # Paper's Figure 1b example: a and c are the hot states.
        trans = {
            ("a", "/"): "b", ("a", "*"): "a", ("a", "x"): "a",
            ("b", "/"): "b", ("b", "*"): "c", ("b", "x"): "a",
            ("c", "/"): "c", ("c", "*"): "d", ("c", "x"): "c",
            ("d", "/"): "a", ("d", "*"): "d", ("d", "x"): "c",
        }
        dfa = DFA.from_dict(trans, start="a", accepting=["a"])
        # room for exactly 2 rows (12B each) plus a small hash table
        cache = plan_hot_states(dfa, shared_budget_bytes=2 * 12 + 8)
        resident = set(np.flatnonzero(cache.resident).tolist())
        assert resident <= {0, 2}  # states a and c (collisions may drop one)
        assert cache.rows_resident >= 1

    def test_measured_frequency_override(self):
        dfa = make_random_dfa(20, 2, seed=2)
        freq = np.zeros(20)
        freq[7] = 100.0
        cache = plan_hot_states(dfa, shared_budget_bytes=16, frequency=freq)
        assert cache.resident[7]

    def test_frequency_shape_checked(self):
        with pytest.raises(ValueError):
            plan_hot_states(make_random_dfa(4, 2, seed=0), frequency=np.ones(3))

    def test_collision_keeps_hotter(self):
        dfa = make_random_dfa(64, 2, seed=3)
        freq = np.arange(64, dtype=float)
        cache = plan_hot_states(
            dfa, shared_budget_bytes=16 * 8 + 4 * 16, frequency=freq, scale=1
        )
        # with scale=1 and few slots, colliding states resolve to the hotter
        slots = cache.slot_state[cache.slot_state >= 0]
        assert len(set(slots.tolist())) == len(slots)

    def test_forced_collision_evicts_colder_resident(self):
        # scale == num_slots sends every state to slot 0: the colder hot
        # state (2) is placed first in id order, then genuinely evicted by
        # the hotter one (10) — the eviction branch must run, and the loser
        # must not be reported resident.
        dfa = make_random_dfa(32, 2, seed=4)  # 8-byte rows
        freq = np.arange(32, dtype=float) * 0.01
        freq[2] = 5.0
        freq[10] = 9.0
        cache = plan_hot_states(
            dfa, shared_budget_bytes=1024, frequency=freq, scale=32
        )
        assert cache.num_slots == 32
        assert cache.slot_state[0] == 10
        assert cache.resident[10]
        assert not cache.resident[2]
        assert cache.rows_resident == 1

    def test_collision_winner_is_hottest_regardless_of_order(self):
        # Property: each occupied slot holds the hottest candidate hashing
        # there, no matter where that candidate sits in insertion order.
        rng = np.random.default_rng(6)
        dfa = make_random_dfa(40, 2, seed=6)
        for trial in range(5):
            freq = rng.permutation(40).astype(float) + 1.0
            cache = plan_hot_states(
                dfa, shared_budget_bytes=2048, frequency=freq, scale=3
            )
            # budget admits all 40 rows, so every state is a candidate
            best: dict[int, int] = {}
            for q in np.argsort(-freq, kind="stable"):
                h = (int(q) * cache.scale) % cache.num_slots
                best.setdefault(h, int(q))  # hottest-first: first wins
            for slot, q in enumerate(cache.slot_state):
                if q >= 0:
                    assert best[slot] == int(q), trial

    def test_is_hit_vectorized(self):
        dfa = make_random_dfa(10, 4, seed=0)
        cache = plan_hot_states(dfa, shared_budget_bytes=48 * 1024)
        states = np.array([0, 5, 9])
        np.testing.assert_array_equal(cache.is_hit(states), [True, True, True])

    def test_hash_placement_consistent(self):
        dfa = make_random_dfa(30, 4, seed=5)
        cache = plan_hot_states(dfa, shared_budget_bytes=1024)
        for slot, q in enumerate(cache.slot_state):
            if q >= 0:
                assert (int(q) * cache.scale) % cache.num_slots == slot
                assert cache.resident[q]


class TestEngineIntegration:
    def test_hit_rate_high_for_skewed_machine(self):
        import repro
        from repro.apps.registry import get_application

        dfa, bits = get_application("huffman").build_instance(100_000, seed=0)
        r = repro.run_speculative(dfa, bits, k=4, num_blocks=1,
                                  threads_per_block=64, cache_table=True,
                                  price=False)
        # Huffman row accesses are heavily skewed: static plan caches all
        # rows (tiny table) or at least yields a high hit rate.
        assert r.stats.cache_hit_rate > 0.9

    def test_budget_propagates(self):
        import repro
        from repro.apps.registry import get_application

        dfa, bits = get_application("huffman").build_instance(50_000, seed=0)
        r = repro.run_speculative(dfa, bits, k=2, num_blocks=1,
                                  threads_per_block=32, cache_table=True,
                                  cache_budget_bytes=64, price=False)
        assert r.cache.shared_bytes <= 64
        assert 0 < r.stats.cache_hit_rate < 1.0
