"""The paper's future work, realized: cost-model-driven k selection.

For every application, the auto-tuner probes candidate widths on an input
prefix and picks the k with the best modeled speedup. The choices must
agree with the paper's findings: spec-N for Div7, k=1 for regex 2 / HTML,
larger k for regex 1 and Huffman.
"""

from repro.apps.registry import APPLICATIONS, get_application
from repro.bench.runner import app_instance, bench_items
from repro.bench.runner import ExperimentResult
from repro.core.autotune import choose_k


def test_autotune_matches_paper(benchmark, save_result):
    def run() -> ExperimentResult:
        res = ExperimentResult(
            "autotune-k", "Cost-model-driven k selection (paper future work)"
        )
        for name in sorted(APPLICATIONS):
            app = get_application(name)
            dfa, inputs = app_instance(name, bench_items(), 1)
            choice = choose_k(
                dfa, inputs,
                lookback=app.default_lookback,
                cpu_transition_ns=app.paper_cpu_ns_per_item,
                probe_items=bench_items() // 2,
                candidates=[1, 2, 4, 8, 16, None],
                target_items=app.paper_num_items,
            )
            res.rows.append(
                {
                    "application": name,
                    "chosen": choice.label,
                    "paper_best": "spec-N" if app.best_k is None
                    else f"spec-{app.best_k}",
                    "modeled_speedup": round(choice.modeled_speedup, 1),
                }
            )
        return res

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(res)
    chosen = {r["application"]: r["chosen"] for r in res.rows}
    assert chosen["div7"] == "spec-N"  # no convergence: enumerate
    assert chosen["regex2"] == "spec-1"  # success ~1 at k=1
    assert chosen["regex1"] in ("spec-8", "spec-16")  # needs width (Fig. 12)
    assert chosen["huffman"] in ("spec-4", "spec-8", "spec-16")
