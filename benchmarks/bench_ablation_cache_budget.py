"""Ablation: hot-state cache hit rate and gain vs shared-memory budget.

Extends Figure 15: the gain saturates once the hot rows fit; a cache too
small to hold them is a net loss because every lookup still pays the
Hot_States hash check (the paper's extra-access trade-off, Section 4.2).
"""

from repro.bench.experiments import ablation_cache_budget


def test_cache_budget_sweep(benchmark, save_result):
    res = benchmark.pedantic(ablation_cache_budget, rounds=1, iterations=1)
    save_result(res)
    rows = {r["budget_bytes"]: r for r in res.rows}
    # no budget, all overhead: a net loss vs uncached
    assert rows[0]["gain_vs_uncached"] < 1.0
    # hit rate grows monotonically with budget
    hits = [r["hit_rate"] for r in res.rows]
    assert all(a <= b + 1e-9 for a, b in zip(hits, hits[1:]))
    # full budget reaches the Figure 15 regime (~1.5x)
    assert rows[48 * 1024]["gain_vs_uncached"] > 1.3
    assert rows[48 * 1024]["hit_rate"] > 0.95
