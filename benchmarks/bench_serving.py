"""Serving throughput: continuous chunk-level batching vs per-request runs.

The serving claim is that coalescing concurrent requests which share a
DFA into one seeded chunk batch sustains materially higher request
throughput than executing each request's own ``run_speculative`` call in
arrival order — same machine, same speculation width, bit-identical
results. This benchmark drives a Zipf-skewed multi-tenant workload
(three tenants, two distinct machines, skewed popularity, variable
request sizes) through both paths:

* ``sequential`` — each request runs alone via
  :func:`repro.core.engine.run_speculative` (one chunk-parallel call per
  request, back to back), the natural baseline a service without
  batching would implement;
* ``served`` — the same requests submitted concurrently to an in-process
  :class:`repro.serve.FSMServer` (inline executor), which continuously
  re-batches whatever is in flight per machine.

Every served response is verified bit-exact against the sequential
reference runner before any timing is reported. Under ``--check`` the
run becomes a CI gate: served sustained req/s must beat sequential by
``SERVE_WIN`` (and verification must pass). The JSON report
(``BENCH_serving.json``) follows the repo's ``BENCH_*.json`` convention
documented in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

import numpy as np

from repro.apps.registry import get_application
from repro.core.engine import run_speculative
from repro.fsm.run import run_segment
from repro.serve.client import ServeClient, zipf_workload
from repro.serve.server import FSMServer, ServeConfig

# Served sustained req/s must exceed sequential per-request req/s by this
# factor under --check. The measured margin is ~5-10x (one shared
# speculation + wide gathers per round vs per-request planning overhead);
# 2.0 keeps the gate robust on noisy CI runners.
SERVE_WIN = 2.0


def _percentile(xs: list[float], q: float) -> float:
    """Percentile of a non-empty sample."""
    return float(np.percentile(np.asarray(xs), q))


def build_workload(args: argparse.Namespace):
    """Build tenants (two machines, one shared) and the Zipf request mix."""
    div7_dfa, div7_corpus = get_application("div7").build_instance(
        args.items, seed=1
    )
    regex_dfa, regex_corpus = get_application("regex1").build_instance(
        args.items, seed=2
    )
    machines = {
        "alpha": div7_dfa,
        "beta": regex_dfa,
        "gamma": div7_dfa,  # shares alpha's machine state by fingerprint
    }
    corpora = {
        "alpha": div7_corpus,
        "beta": regex_corpus,
        "gamma": div7_corpus,
    }
    workload = zipf_workload(
        corpora,
        num_requests=args.requests,
        mean_items=args.mean_items,
        alpha=args.alpha,
        seed=args.seed,
    )
    return machines, workload


def bench_sequential(machines, workload, *, k: int, lookback: int):
    """Per-request ``run_speculative`` in arrival order; finals + timing."""
    finals = []
    lat = []
    t0 = time.perf_counter()
    for w in workload:
        s = time.perf_counter()
        res = run_speculative(
            machines[w.tenant],
            w.symbols,
            k=k,
            num_blocks=1,
            threads_per_block=32,
            lookback=lookback,
            price=False,
            measure_success=False,
            collapse="off",
        )
        lat.append(time.perf_counter() - s)
        finals.append(int(res.final_state))
    return finals, time.perf_counter() - t0, lat


def bench_served(machines, workload, args) -> tuple[list[int], float, list[float], dict]:
    """Concurrent submission to an inline-executor FSMServer."""

    async def drive():
        """Start a server, submit the whole workload concurrently, drain it."""
        server = FSMServer(
            ServeConfig(
                executor="inline",
                max_queue_depth=max(1024, 2 * args.requests),
                max_batch_requests=128,
                k=args.k,
                lookback=args.lookback,
                round_budget_items=args.round_budget,
                chunk_items=args.chunk_items,
            )
        )
        tenants = {}
        for name, dfa in machines.items():
            tenants[name] = server.register_tenant(name, dfa)
        clients = {n: ServeClient(server, t) for n, t in tenants.items()}
        await server.start()
        t0 = time.perf_counter()
        responses = await asyncio.gather(
            *(clients[w.tenant].match(w.symbols) for w in workload)
        )
        elapsed = time.perf_counter() - t0
        counters = dict(server.trace.counters_with_prefix("serve."))
        await server.close()
        return responses, elapsed, counters

    responses, elapsed, counters = asyncio.run(drive())
    shed = [r for r in responses if r.status != "ok"]
    if shed:
        raise AssertionError(f"{len(shed)} responses shed with ample queue depth")
    finals = [int(r.final_state) for r in responses]
    lat = [r.queue_wait_s + r.service_s for r in responses]
    return finals, elapsed, lat, counters


def main(argv: list[str] | None = None) -> int:
    """Run the serving benchmark; returns a process exit code."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=256)
    ap.add_argument("--items", type=int, default=1 << 17, help="corpus items")
    ap.add_argument("--mean-items", type=int, default=2048)
    ap.add_argument("--alpha", type=float, default=1.2, help="Zipf skew")
    ap.add_argument("--k", type=int, default=4)
    ap.add_argument("--lookback", type=int, default=8)
    ap.add_argument("--round-budget", type=int, default=1 << 16)
    ap.add_argument("--chunk-items", type=int, default=1 << 12)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--quick", action="store_true", help="small CI sizing")
    ap.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero unless served/sequential >= {SERVE_WIN}",
    )
    ap.add_argument("--out", default=None, help="write JSON report here")
    args = ap.parse_args(argv)
    if args.quick:
        args.requests = min(args.requests, 96)
        args.items = min(args.items, 1 << 16)
        args.mean_items = min(args.mean_items, 1024)

    machines, workload = build_workload(args)
    total_items = int(sum(w.symbols.size for w in workload))
    print(
        f"serving bench: {args.requests} requests, {total_items} items, "
        f"3 tenants / 2 machines, zipf alpha={args.alpha}"
    )

    # Reference finals (plain sequential automaton) for verification.
    reference = [
        run_segment(machines[w.tenant], w.symbols, machines[w.tenant].start)
        for w in workload
    ]

    seq_finals, seq_s, seq_lat = bench_sequential(
        machines, workload, k=args.k, lookback=args.lookback
    )
    srv_finals, srv_s, srv_lat, counters = bench_served(
        machines, workload, args
    )

    bad = sum(
        1
        for ref, a, b in zip(reference, seq_finals, srv_finals)
        if a != ref or b != ref
    )
    seq_rps = args.requests / seq_s
    srv_rps = args.requests / srv_s
    win = srv_rps / seq_rps
    report = {
        "bench": "serving",
        "requests": args.requests,
        "total_items": total_items,
        "zipf_alpha": args.alpha,
        "k": args.k,
        "verified": bad == 0,
        "sequential": {
            "seconds": seq_s,
            "req_per_s": seq_rps,
            "p50_ms": _percentile(seq_lat, 50) * 1e3,
            "p99_ms": _percentile(seq_lat, 99) * 1e3,
        },
        "served": {
            "seconds": srv_s,
            "req_per_s": srv_rps,
            "p50_ms": _percentile(srv_lat, 50) * 1e3,
            "p99_ms": _percentile(srv_lat, 99) * 1e3,
            "rounds": counters.get("serve.rounds", 0),
            "coalesced": counters.get("serve.coalesced", 0),
        },
        "win": win,
        "gate": {"serve_win": SERVE_WIN, "checked": bool(args.check)},
    }
    print(
        f"  sequential: {seq_rps:8.1f} req/s   "
        f"p50={report['sequential']['p50_ms']:.2f}ms "
        f"p99={report['sequential']['p99_ms']:.2f}ms"
    )
    print(
        f"  served:     {srv_rps:8.1f} req/s   "
        f"p50={report['served']['p50_ms']:.2f}ms "
        f"p99={report['served']['p99_ms']:.2f}ms   "
        f"rounds={report['served']['rounds']} "
        f"coalesced={report['served']['coalesced']}"
    )
    print(f"  win: {win:.2f}x  (gate {SERVE_WIN}x)  verified={bad == 0}")

    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2)
        print(f"  wrote {args.out}")

    if bad:
        print(f"FAIL: {bad} finals mismatch the reference")
        return 1
    if args.check and win < SERVE_WIN:
        print(f"FAIL: served win {win:.2f}x below gate {SERVE_WIN}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
