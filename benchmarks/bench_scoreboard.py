"""Straggler benchmark: barrier merge vs the chunk scoreboard.

The barrier engine resolves chunk maps in lock-step stages, so on a
straggler-skewed partition every chunk pays the longest chunk's schedule:
the divergent (SIMT-faithful) ragged driver issues ``max_len`` gathers over
*all* ``n x k`` lanes even after most chunks have finished. The scoreboard
path (``schedule="ooo"``, :mod:`repro.core.scoreboard`) executes from an
active list — finished chunks leave the gather — and merges/re-executes
each chunk the moment it posts, so total work tracks ``sum(lengths) * k``
instead of ``n * k * max_len``.

This script times both schedules on two chunk-length distributions:

* ``uniform`` — the classic equal partition (no stragglers). The
  scoreboard must not regress here: same execution, resolution replaces
  the merge.
* ``zipf`` — chunk lengths proportional to a shuffled Zipf(``--alpha``)
  weight vector, the straggler-skewed shape real variable-rate feeds
  (compressed blocks, bursty packet captures) produce.

Repeats are interleaved (barrier/ooo/barrier/ooo/...) and aggregated
min-of-repeats so load spikes hit both labels equally. Every timed run is
verified against the sequential reference, and one untimed traced run per
case records the ``sched.*`` scheduler counters into the JSON report.

Run standalone (argparse script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_scoreboard.py
    PYTHONPATH=src python benchmarks/bench_scoreboard.py --quick --check

``--check`` is the CI guard: it exits non-zero unless the scoreboard wins
by at least 1.2x on every Zipf-skewed case and stays within the noise
bound of the barrier on every uniform case.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.apps.registry import APPLICATIONS, get_application
from repro.core.engine import run_speculative
from repro.fsm.run import run_reference
from repro.obs.trace import RunTrace
from repro.workloads.chunking import plan_chunks, plan_from_lengths

SCHEDULES = ("barrier", "ooo")
PLAN_KINDS = ("uniform", "zipf")

# --check bounds. The acceptance bar for the scoreboard is a 1.2x win on
# straggler-skewed plans; measured wins on the reference machine are 3-7x,
# so 1.2x is a regression guard with ample noise margin. Uniform plans are
# a wash by construction — the bound only catches a scoreboard that got
# accidentally expensive.
ZIPF_WIN = 1.2
UNIFORM_OVERHEAD_FULL = 0.15
UNIFORM_OVERHEAD_QUICK = 0.30


def zipf_lengths(num_items: int, num_chunks: int, alpha: float, seed: int) -> np.ndarray:
    """Chunk lengths ~ shuffled Zipf(alpha) ranks, summing to ``num_items``."""
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, num_chunks + 1, dtype=np.float64) ** alpha
    rng.shuffle(weights)
    lengths = np.maximum(
        (weights / weights.sum() * num_items).astype(np.int64), 1
    )
    lengths[int(np.argmax(lengths))] += num_items - int(lengths.sum())
    return lengths


def bench_case(
    name: str,
    plan_kind: str,
    *,
    num_items: int,
    num_chunks: int,
    k: int,
    alpha: float,
    repeats: int,
    seed: int = 7,
) -> dict:
    """Time one application on one chunk-length distribution."""
    app = get_application(name)
    dfa, inputs = app.build(num_items, seed=seed)
    num_items = int(inputs.size)  # apps may round the requested size
    ref = run_reference(dfa, inputs)
    if plan_kind == "zipf":
        plan = plan_from_lengths(
            zipf_lengths(num_items, num_chunks, alpha, seed + 1)
        )
    else:
        plan = plan_chunks(num_items, num_chunks)
    kw = dict(
        k=k,
        num_blocks=1,
        threads_per_block=32,
        lookback=app.default_lookback,
        plan=plan,
        price=False,
    )

    best = {s: float("inf") for s in SCHEDULES}
    results = {}
    for _ in range(repeats):
        for sched in SCHEDULES:
            t0 = time.perf_counter()
            r = run_speculative(dfa, inputs, schedule=sched, **kw)
            dt = time.perf_counter() - t0
            if r.final_state != ref:
                raise AssertionError(
                    f"{name} {plan_kind} schedule={sched}: final state "
                    f"{r.final_state} != reference {ref}"
                )
            best[sched] = min(best[sched], dt)
            results[sched] = r

    # One untimed traced run records the scheduler counters.
    trace = RunTrace("bench_scoreboard", app=name, plan=plan_kind)
    with trace.activate():
        run_speculative(dfa, inputs, schedule="ooo", **kw)
    sched_counters = trace.counters_with_prefix("sched.")

    row = {
        "application": name,
        "plan": plan_kind,
        "num_items": num_items,
        "num_chunks": plan.num_chunks,
        "max_len": plan.max_len,
        "mean_len": num_items / plan.num_chunks,
        "k": k,
        "schedules": {},
        "sched_counters": sched_counters,
    }
    for sched in SCHEDULES:
        s = results[sched].stats
        row["schedules"][sched] = {
            "measured_s": best[sched],
            "local_gathers": s.local_gathers,
            "reexec_chunks_early": s.reexec_chunks_early,
            "reexec_items_early": s.reexec_items_early,
        }
    row["ooo_speedup"] = best["barrier"] / best["ooo"] if best["ooo"] else None
    return row


def check_rows(rows: list[dict], *, quick: bool) -> list[str]:
    """Return guard violations (empty = all good)."""
    overhead_bound = UNIFORM_OVERHEAD_QUICK if quick else UNIFORM_OVERHEAD_FULL
    problems = []
    for row in rows:
        label = f"{row['application']} {row['plan']} k={row['k']}"
        speedup = row["ooo_speedup"]
        if row["plan"] == "zipf":
            if speedup < ZIPF_WIN:
                problems.append(
                    f"{label}: scoreboard speedup {speedup:.2f}x below the "
                    f"{ZIPF_WIN:.1f}x bound"
                )
            barrier_g = row["schedules"]["barrier"]["local_gathers"]
            ooo_g = row["schedules"]["ooo"]["local_gathers"]
            if ooo_g >= barrier_g:
                problems.append(
                    f"{label}: active-list gathers did not shrink "
                    f"({ooo_g} >= {barrier_g})"
                )
        else:
            overhead = 1.0 / speedup - 1.0
            if overhead > overhead_bound:
                problems.append(
                    f"{label}: scoreboard overhead {overhead * 100:.1f}% on "
                    f"uniform chunks above the "
                    f"{overhead_bound * 100:.0f}% bound"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--apps", nargs="*", default=["div7", "regex1"],
        choices=sorted(APPLICATIONS), help="applications to bench",
    )
    ap.add_argument(
        "--items", type=int, default=1 << 20,
        help="input symbols (default 2^20)",
    )
    ap.add_argument(
        "--chunks", type=int, default=256,
        help="chunks in the partition",
    )
    ap.add_argument("--k", type=int, default=4, help="speculation width")
    ap.add_argument(
        "--alpha", type=float, default=1.4,
        help="Zipf exponent for the skewed plan (bigger = more skew)",
    )
    ap.add_argument("--repeats", type=int, default=5, help="min-of repeats")
    ap.add_argument(
        "--quick", action="store_true",
        help="small CI-sized run (2^17 items, 3 repeats, first app only)",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="exit 1 on a straggler win / uniform overhead regression",
    )
    ap.add_argument("--out", default="BENCH_scoreboard.json", help="output path")
    args = ap.parse_args(argv)
    if args.quick:
        args.items = min(args.items, 1 << 17)
        args.repeats = min(args.repeats, 3)
        args.apps = args.apps[:1]

    rows = []
    for name in args.apps:
        for plan_kind in PLAN_KINDS:
            t0 = time.perf_counter()
            row = bench_case(
                name,
                plan_kind,
                num_items=args.items,
                num_chunks=args.chunks,
                k=args.k,
                alpha=args.alpha,
                repeats=args.repeats,
            )
            row["bench_wall_s"] = round(time.perf_counter() - t0, 3)
            rows.append(row)
            b = row["schedules"]["barrier"]["measured_s"]
            o = row["schedules"]["ooo"]["measured_s"]
            print(
                f"{name:8s} {plan_kind:7s} barrier={b * 1000:8.1f}ms "
                f"ooo={o * 1000:8.1f}ms speedup={row['ooo_speedup']:.2f}x "
                f"max/mean={row['max_len'] / row['mean_len']:.1f}"
            )

    report = {
        "benchmark": "scoreboard",
        "items": args.items,
        "num_chunks": args.chunks,
        "k": args.k,
        "alpha": args.alpha,
        "repeats": args.repeats,
        "quick": args.quick,
        "rows": rows,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.out}")

    if args.check:
        problems = check_rows(rows, quick=args.quick)
        for p in problems:
            print(f"CHECK FAILED: {p}", file=sys.stderr)
        if problems:
            return 1
        print(
            "check passed: scoreboard beats the barrier on straggler-skewed "
            "plans and stays in the noise on uniform plans"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
