"""Measure the native-compiled hot path and write ``BENCH_native.json``.

For every paper application this script measures steady-state local
processing under each backend the measured autotuner knows —
``scalar``/``vectorized`` (the NumPy kernel layer), ``codegen`` (the
generated per-``k`` Python kernel), and ``native`` (the specialized C
loop from :mod:`repro.core.native`) — on the same speculated chunk plan,
and reports the native speedup over the NumPy path plus the compile-cache
statistics (compiles, disk/memory hits, provider).

Run standalone (it is an argparse script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_native.py --items 400000
    PYTHONPATH=src python benchmarks/bench_native.py --quick --check

``--check`` exits non-zero unless native is eligible and measured at
least ``1.5x`` faster than the NumPy path on at least two applications —
the CI guard for the compiled hot path. (The fallback leg of CI runs the
test suite with ``CC=/bin/false`` instead; no benchmark gate applies
when no compiler exists.)

``BENCH_native.json`` schema::

    {
      "benchmark": "native",
      "items": int, "chunks": int, "repeats": int,
      "check_min_speedup": float, "check_min_apps": int,
      "cache": {...},            # repro.core.native.cache_stats()
      "rows": [
        {
          "application": str, "num_items": int, "num_states": int,
          "num_classes": int, "k": int, "kernel": str,
          "selected": str,        # backend the autotuner chose
          "native_provider": str | null,
          "native_speedup_vs_numpy": float | null,
          "backends": {name: {"measured_s": float,
                               "throughput_items_per_s": float,
                               "build_s": float | null}},
          "bench_wall_s": float
        }, ...
      ]
    }
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.apps.registry import APPLICATIONS, get_application
from repro.core.autotune import choose_backend
from repro.core.native import cache_stats, native_available

CHECK_MIN_SPEEDUP = 1.5  # native must beat NumPy by this much ...
CHECK_MIN_APPS = 2  # ... on at least this many applications


def bench_app(
    name: str,
    *,
    num_items: int,
    num_chunks: int,
    k: int | None,
    repeats: int,
    include_scalar: bool,
    seed: int = 1,
) -> dict:
    """Measure every backend on one application; return a JSON-ready row."""
    app = get_application(name)
    dfa, inputs = app.build_instance(num_items, seed=seed)
    k_eff = app.best_k if k is None else k
    if k_eff is None:
        k_eff = dfa.num_states
    candidates = ["vectorized", "codegen", "native"]
    if include_scalar:
        candidates.append("scalar")
    choice = choose_backend(
        dfa,
        inputs,
        num_chunks=num_chunks,
        k=k_eff,
        lookback=app.default_lookback,
        probe_items=inputs.size,
        repeats=repeats,
        candidates=tuple(candidates),
    )
    base = choice.measured_s.get("vectorized")
    native = choice.measured_s.get("native")
    row = {
        "application": name,
        "num_items": int(inputs.size),
        "num_states": dfa.num_states,
        "num_classes": None,
        "k": k_eff,
        "kernel": choice.kernel,
        "selected": choice.backend,
        "native_provider": choice.native_provider,
        "native_speedup_vs_numpy": (
            base / native if base and native else None
        ),
        "backends": {},
    }
    for bname, t in sorted(choice.measured_s.items()):
        row["backends"][bname] = {
            "measured_s": t,
            "throughput_items_per_s": inputs.size / t if t else None,
            "build_s": choice.build_s.get(bname),
        }
    return row


def check_rows(rows: list[dict]) -> list[str]:
    """Return check violations (empty = the native gate passes)."""
    problems = []
    fast = 0
    for row in rows:
        sp = row["native_speedup_vs_numpy"]
        if sp is None:
            problems.append(
                f"{row['application']}: native ineligible "
                f"(no provider loaded)"
            )
        elif sp >= CHECK_MIN_SPEEDUP:
            fast += 1
    if fast < CHECK_MIN_APPS:
        problems.append(
            f"native reached >= {CHECK_MIN_SPEEDUP:.1f}x over NumPy on only "
            f"{fast}/{len(rows)} applications (need {CHECK_MIN_APPS})"
        )
    else:
        problems = [p for p in problems if "ineligible" not in p] or []
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--apps", nargs="*", default=sorted(APPLICATIONS),
        choices=sorted(APPLICATIONS), help="applications to bench (default all)",
    )
    ap.add_argument("--items", type=int, default=400_000, help="input symbols")
    ap.add_argument("--chunks", type=int, default=1024, help="chunk count")
    ap.add_argument(
        "--k", type=int, default=None,
        help="speculation width (default: each app's paper-best k)",
    )
    ap.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    ap.add_argument(
        "--quick", action="store_true",
        help="small CI-sized run (128k items, 256 chunks, 2 repeats)",
    )
    ap.add_argument(
        "--scalar", action="store_true",
        help="also measure the scalar backend (slow on large inputs)",
    )
    ap.add_argument(
        "--check", action="store_true",
        help=(
            f"exit 1 unless native is >= {CHECK_MIN_SPEEDUP}x NumPy on "
            f">= {CHECK_MIN_APPS} apps"
        ),
    )
    ap.add_argument("--out", default="BENCH_native.json", help="output path")
    args = ap.parse_args(argv)
    if args.quick:
        args.items = min(args.items, 128_000)
        args.chunks = min(args.chunks, 256)
        args.repeats = min(args.repeats, 2)

    if not native_available():
        print("no native provider available (no compiler, no numba)")
        if args.check:
            return 1

    rows = []
    for name in args.apps:
        t0 = time.perf_counter()
        row = bench_app(
            name,
            num_items=args.items,
            num_chunks=args.chunks,
            k=args.k,
            repeats=args.repeats,
            include_scalar=args.scalar,
        )
        row["bench_wall_s"] = round(time.perf_counter() - t0, 3)
        rows.append(row)
        sp = row["native_speedup_vs_numpy"]
        print(
            f"{name:8s} k={row['k']:<3d} kernel={row['kernel']:9s} "
            f"selected={row['selected']:10s} "
            + (f"native speedup={sp:.2f}x" if sp else "native ineligible")
        )

    report = {
        "benchmark": "native",
        "items": args.items,
        "chunks": args.chunks,
        "repeats": args.repeats,
        "check_min_speedup": CHECK_MIN_SPEEDUP,
        "check_min_apps": CHECK_MIN_APPS,
        "cache": cache_stats(),
        "rows": rows,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.out}")

    if args.check:
        problems = check_rows(rows)
        for p in problems:
            print(f"CHECK FAILED: {p}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"check passed: native >= {CHECK_MIN_SPEEDUP}x NumPy on >= "
            f"{CHECK_MIN_APPS} applications"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
