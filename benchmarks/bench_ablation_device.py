"""Ablation: the same execution priced on a smaller device (GTX 1080 Ti).

Scaling stops at the device's SM residency under persistent threads — the
"scale out" headroom is a property of the device, the algorithm keeps it
usable all the way there.
"""

from repro.bench.experiments import ablation_device_comparison


def test_device_comparison(benchmark, save_result):
    res = benchmark.pedantic(ablation_device_comparison, rounds=1, iterations=1)
    save_result(res)
    v100 = [r for r in res.rows if r["device"] == "Tesla V100"]
    gtx = [r for r in res.rows if r["device"] == "GTX 1080 Ti"]
    # V100 keeps scaling through 80 blocks
    assert v100[-1]["speedup"] == max(r["speedup"] for r in v100)
    # the 28-SM device peaks at its residency and gains nothing beyond
    peak = max(r["speedup"] for r in gtx)
    at_res = next(r["speedup"] for r in gtx if r["blocks"] == 28)
    assert at_res >= 0.95 * peak
