"""Shared shape assertions for the scaling figures (7-11)."""

from __future__ import annotations

from repro.bench.experiments import scaling_figure
from repro.bench.runner import ExperimentResult


def run_and_check(app_name: str, benchmark, save_result) -> ExperimentResult:
    """Run a scaling figure and assert the paper's qualitative shape."""
    res = benchmark.pedantic(
        lambda: scaling_figure(app_name), rounds=1, iterations=1
    )
    save_result(res)
    series: dict[str, list[float]] = {}
    for row in res.rows:
        series.setdefault(row["series"], []).append(row["speedup"])

    # The merge-bound series is the app's headline spec width: spec-k where
    # the paper uses one, otherwise spec-N (Div7). Under spec-N with many
    # states, spilled local processing dominates and even the sequential
    # merge keeps scaling — exactly as the paper's Fig. 7 spec-N bars do
    # (3.98 / 7.86 / 15.06), so no decline is asserted there.
    headline = "spec-k" if "spec-k/parallel" in series else "spec-N"
    for label, speeds in series.items():
        if label.endswith("/parallel"):
            # parallel merge keeps scaling through 80 blocks
            assert speeds[0] < speeds[1] < speeds[2], (label, speeds)
        elif label == f"{headline}/sequential":
            # sequential merge peaks at 20-40 blocks, declines by 80
            assert speeds[2] < max(speeds[:2]) * 1.05, (label, speeds)

    # Parallel beats sequential at best config by the paper's 2-7x band —
    # for the headline series. (Under local-bound spec-N the two merges tie,
    # as in the paper's Fig. 7 where spec-N parallel is 15.80 vs 15.06.)
    best = {label: max(s) for label, s in series.items()}
    ratio = best[f"{headline}/parallel"] / best[f"{headline}/sequential"]
    assert ratio > 1.3, (headline, ratio)
    return res
