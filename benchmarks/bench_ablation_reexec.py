"""Ablation: eager vs delayed re-execution (Section 3.3).

On a machine where speculation misses often (Div7 at small k), the eager
strategy resolves many mismatches that are never on the true path; delayed
marking re-executes only the necessary chunks via the fix-up descent.
"""

from repro.bench.experiments import ablation_eager_vs_delayed


def test_eager_vs_delayed(benchmark, save_result):
    res = benchmark.pedantic(ablation_eager_vs_delayed, rounds=1, iterations=1)
    save_result(res)
    for row in res.rows:
        # delayed never re-executes more items than eager — the paper's
        # "avoid unnecessary re-executions" claim, quantified
        assert row["delayed_reexec_items"] <= row["eager_reexec_items"]
        assert row["waste_ratio"] >= 1.0
    # at k >= 2 the waste is substantial
    assert max(r["waste_ratio"] for r in res.rows) > 3.0
