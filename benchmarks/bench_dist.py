"""Measure cross-host coordination overhead and recovery; write ``BENCH_dist.json``.

Two questions, answered against the same machine and input:

1. **Fault-free coordination overhead** — what do the TCP frames, the
   per-host boundary staging, heartbeats, and the hierarchical merge cost
   when nothing fails? Measured as :class:`repro.dist.coordinator.ShardCoordinator`
   throughput over a :class:`repro.dist.agent.LocalCluster` vs a single
   :class:`repro.core.mp_executor.ScaleoutPool` with the *same total worker
   count*. The acceptance bound is <10%.
2. **Recovery** — when one host dies mid-run, does the coordinator reshard
   onto the survivors and still return the exact reference state, and what
   does the detour cost in wall clock?

Run standalone (argparse script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_dist.py --items 2000000
    PYTHONPATH=src python benchmarks/bench_dist.py --quick --check

``--check`` exits non-zero if fault-free coordination overhead exceeds the
bound or a recovery run degrades below resharding / returns a wrong final
state — the CI guard.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.apps.registry import APPLICATIONS, get_application
from repro.core import faultinject as fi
from repro.core.mp_executor import ScaleoutPool
from repro.core.resilience import DeadlineModel, RetryPolicy
from repro.dist.agent import LocalCluster
from repro.dist.coordinator import DistConfig, ShardCoordinator
from repro.dist.netfaults import NetFaultPlan
from repro.fsm.run import run_reference

OVERHEAD_BOUND_PCT = 10.0  # acceptance: fault-free coordination cost < 10%

#: Supervision tuned for a loaded benchmark box: a high deadline floor so
#: scheduler jitter on an oversubscribed machine never triggers spurious
#: hedges in the fault-free leg (host death in the recovery leg is
#: detected by the closed link, not by deadlines, so recovery stays
#: immediate).
TUNED = dict(
    heartbeat_interval_s=0.5,
    heartbeat_timeout_s=5.0,
    deadline=DeadlineModel(
        floor_s=30.0, bytes_per_sec_floor=1e6, safety_factor=8.0
    ),
    retry=RetryPolicy(max_retries=3, backoff_base_s=0.05),
)


def build_workload(app_name: str, num_items: int, seed: int):
    """One paper application's machine plus a coordinator-scale input."""
    app = get_application(app_name)
    return app.build_instance(num_items, seed=seed)


def timed_local(dfa, inputs, *, num_workers: int, k: int | None,
                repeats: int) -> list[float]:
    """Per-run seconds on one local pool (first call excluded: warm-up)."""
    with ScaleoutPool(dfa, num_workers=num_workers, k=k,
                      fault_plan=fi.FaultPlan()) as pool:
        pool.run(inputs)
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            pool.run(inputs)
            times.append(time.perf_counter() - t0)
    return times


def timed_dist(dfa, inputs, *, agents: int, agent_workers: int,
               k: int | None, repeats: int) -> list[float]:
    """Per-run seconds through the coordinator (first call excluded)."""
    with LocalCluster(agents, agent_workers=agent_workers) as cluster:
        cfg = DistConfig(k=k, shards_per_host=agent_workers, **TUNED)
        with ShardCoordinator(dfa, cluster.addresses, config=cfg,
                              net_faults=NetFaultPlan()) as coord:
            coord.run(inputs)
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                coord.run(inputs)
                times.append(time.perf_counter() - t0)
    return times


def bench_overhead(dfa, inputs, *, agents: int, agent_workers: int,
                   k: int | None, repeats: int) -> dict:
    """Coordinator vs local pool at equal total worker count."""
    total_workers = agents * agent_workers
    base = timed_local(dfa, inputs, num_workers=total_workers, k=k,
                       repeats=repeats)
    dist = timed_dist(dfa, inputs, agents=agents,
                      agent_workers=agent_workers, k=k, repeats=repeats)
    base_s = statistics.median(base)
    dist_s = statistics.median(dist)
    return {
        "local_median_s": base_s,
        "dist_median_s": dist_s,
        "local_throughput_items_per_s": inputs.size / base_s,
        "dist_throughput_items_per_s": inputs.size / dist_s,
        "overhead_pct": (dist_s / base_s - 1.0) * 100.0,
        "total_workers": total_workers,
        "repeats": repeats,
    }


def bench_recovery(dfa, inputs, *, agents: int, agent_workers: int,
                   k: int | None, repeats: int) -> dict:
    """Wall-clock cost of losing one host mid-run, plus exactness."""
    ref = run_reference(dfa, inputs)
    cfg = DistConfig(k=k, shards_per_host=agent_workers, **TUNED)
    with LocalCluster(agents, agent_workers=agent_workers) as cluster:
        with ShardCoordinator(dfa, cluster.addresses, config=cfg,
                              net_faults=NetFaultPlan()) as coord:
            coord.run(inputs)  # warm-up
            clean_s = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                coord.run(inputs)
                clean_s.append(time.perf_counter() - t0)
    runs = []
    faulted_s = []
    for i in range(repeats):
        with LocalCluster(agents, agent_workers=agent_workers) as cluster:
            with ShardCoordinator(dfa, cluster.addresses, config=cfg,
                                  net_faults=NetFaultPlan()) as coord:
                coord.run(inputs)  # warm-up: stage pools on every host
                cluster.kill(i % agents)  # the link drops mid-run
                t0 = time.perf_counter()
                res = coord.run(inputs)
                faulted_s.append(time.perf_counter() - t0)
        runs.append({
            "correct": bool(res.final_state == ref),
            "ladder": res.ladder,
            "degraded": bool(res.degraded),
            "hosts_left": res.num_hosts,
        })
    clean = statistics.median(clean_s)
    faulted = statistics.median(faulted_s)
    return {
        "clean_median_s": clean,
        "host_death_median_s": faulted,
        "recovery_latency_s": max(0.0, faulted - clean),
        "runs": runs,
    }


def check_report(report: dict) -> list[str]:
    """Return acceptance violations (empty = all good)."""
    problems = []
    pct = report["overhead"]["overhead_pct"]
    if pct >= OVERHEAD_BOUND_PCT:
        problems.append(
            f"fault-free coordination overhead {pct:.2f}% exceeds the "
            f"{OVERHEAD_BOUND_PCT:.1f}% bound"
        )
    for i, run in enumerate(report["recovery"]["runs"]):
        if not run["correct"]:
            problems.append(f"recovery run {i} returned a wrong final state")
        if run["ladder"] not in ("", "reshard"):
            problems.append(
                f"recovery run {i} fell to ladder rung {run['ladder']!r}, "
                "expected resharding onto surviving hosts"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--items", type=int, default=2_000_000, help="input symbols")
    ap.add_argument(
        "--app", default="huffman", choices=sorted(APPLICATIONS),
        help="paper application supplying the machine and input",
    )
    ap.add_argument("--agents", type=int, default=3, help="host agents")
    ap.add_argument("--agent-workers", type=int, default=2,
                    help="pool workers per host agent")
    ap.add_argument("--k", type=int, default=None,
                    help="speculation width (default spec-N)")
    ap.add_argument("--repeats", type=int, default=5, help="timed runs per config")
    ap.add_argument("--quick", action="store_true",
                    help="small CI-sized run (200k items, 3 repeats)")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 on overhead/recovery acceptance violations")
    ap.add_argument("--out", default="BENCH_dist.json", help="output path")
    args = ap.parse_args(argv)
    if args.quick:
        args.items = min(args.items, 200_000)
        args.repeats = min(args.repeats, 3)

    dfa, inputs = build_workload(args.app, args.items, seed=7)
    overhead = bench_overhead(
        dfa, inputs, agents=args.agents, agent_workers=args.agent_workers,
        k=args.k, repeats=args.repeats,
    )
    print(
        f"fault-free: local pool {overhead['local_median_s'] * 1e3:.1f} ms, "
        f"coordinator {overhead['dist_median_s'] * 1e3:.1f} ms "
        f"({args.agents} hosts), overhead {overhead['overhead_pct']:+.2f}%"
    )
    recovery = bench_recovery(
        dfa, inputs, agents=args.agents, agent_workers=args.agent_workers,
        k=args.k, repeats=args.repeats,
    )
    print(
        f"recovery:   clean {recovery['clean_median_s'] * 1e3:.1f} ms, "
        f"one host killed {recovery['host_death_median_s'] * 1e3:.1f} ms, "
        f"latency {recovery['recovery_latency_s'] * 1e3:.1f} ms"
    )

    report = {
        "benchmark": "dist",
        "application": args.app,
        "items": int(inputs.size),
        "states": dfa.num_states,
        "alphabet": dfa.num_inputs,
        "agents": args.agents,
        "agent_workers": args.agent_workers,
        "k": args.k,
        "overhead_bound_pct": OVERHEAD_BOUND_PCT,
        "overhead": overhead,
        "recovery": recovery,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.out}")

    if args.check:
        problems = check_report(report)
        for p in problems:
            print(f"CHECK FAILED: {p}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"check passed: overhead {overhead['overhead_pct']:.2f}% < "
            f"{OVERHEAD_BOUND_PCT:.1f}%, all recoveries exact"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
