"""Table 5: the two regular expressions and their compiled machines."""

from repro.bench.experiments import table5_regexes


def test_table5_reproduction(benchmark, save_result):
    res = benchmark.pedantic(table5_regexes, rounds=1, iterations=1)
    save_result(res)
    r1, r2 = res.rows
    # Input-class counts match the paper exactly; state counts are
    # construction-dependent (see EXPERIMENTS.md).
    assert r1["input_classes"] == r1["paper_classes"] == 7
    assert r2["input_classes"] == r2["paper_classes"] == 3
    assert r1["minimal_states"] <= r1["dfa_states"]
