"""Figure 8: merge scalability for regex1 (sequential vs parallel,
spec-k and spec-N, at 20/40/80 thread blocks)."""

from benchmarks.scaling_common import run_and_check


def test_fig8_reproduction(benchmark, save_result):
    run_and_check("regex1", benchmark, save_result)
