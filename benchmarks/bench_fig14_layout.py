"""Figure 14: effect of the input layout transformation (coalescing).

The paper reports a 3.79x average gain from the transformed layout. This
benchmark reproduces the modeled gain AND measures the real NumPy-side
wall-clock difference (contiguous row reads vs strided gathers) — the same
memory-system effect at a smaller scale.
"""

import time

import repro
from repro.bench.experiments import fig14_layout
from repro.bench.runner import app_instance, bench_items


def test_fig14_reproduction(benchmark, save_result):
    res = benchmark.pedantic(fig14_layout, rounds=1, iterations=1)
    save_result(res)
    gains = [r["gain"] for r in res.rows]
    assert sum(g > 3.0 for g in gains) >= 3  # most apps see the full effect
    assert all(g > 1.1 for g in gains)
    avg = sum(gains) / len(gains)
    assert 2.0 < avg < 6.0  # paper: 3.79 average


def test_real_wallclock_layout_effect(save_result):
    """The transformation also wins real time in the NumPy engine."""
    dfa, inputs = app_instance("div7", bench_items(), 1)

    def run(layout: str) -> float:
        t0 = time.perf_counter()
        repro.run_speculative(
            dfa, inputs, k=None, num_blocks=40, threads_per_block=256,
            layout=layout, measure_success=False, price=False,
        )
        return time.perf_counter() - t0

    run("transformed")  # warm-up
    t_nat = min(run("natural") for _ in range(3))
    t_tra = min(run("transformed") for _ in range(3))
    print(f"\nreal wall-clock: natural={t_nat * 1e3:.1f}ms "
          f"transformed={t_tra * 1e3:.1f}ms ratio={t_nat / t_tra:.2f}x")
    # the gather-free layout must not lose (cache behaviour favors it)
    assert t_tra < t_nat * 1.25
