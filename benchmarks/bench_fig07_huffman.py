"""Figure 7: merge scalability for huffman (sequential vs parallel,
spec-k and spec-N, at 20/40/80 thread blocks)."""

from benchmarks.scaling_common import run_and_check


def test_fig7_reproduction(benchmark, save_result):
    run_and_check("huffman", benchmark, save_result)
