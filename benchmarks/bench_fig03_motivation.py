"""Figure 3: sequential merge caps scalability for every k (regex 2).

The motivating experiment: regardless of the speculation width, speedup
under the sequential merge stops improving (or regresses) as thread blocks
grow — the observation that motivates the parallel merge.
"""

from repro.bench.experiments import fig3_motivation


def test_fig3_reproduction(benchmark, save_result):
    res = benchmark.pedantic(fig3_motivation, rounds=1, iterations=1)
    save_result(res)
    by_k: dict = {}
    for row in res.rows:
        by_k.setdefault(row["k"], []).append(row["speedup"])
    for k, speeds in by_k.items():
        # 80-block speedup must not meaningfully exceed the 20-40 block peak
        peak_small = max(speeds[:-1])
        assert speeds[-1] <= peak_small * 1.15, (k, speeds)
    # smaller k does less redundant work: k=4 beats spec-N everywhere
    assert max(by_k[4]) > max(by_k["N"])
