"""Figure 5: state-frequency CDF for regular expression 1.

The paper observes the top 8 states cover ~95% of transitions — the skew
that makes hot-state caching effective.
"""

from repro.bench.experiments import fig5_state_frequency_cdf


def test_fig5_reproduction(benchmark, save_result):
    res = benchmark.pedantic(fig5_state_frequency_cdf, rounds=1, iterations=1)
    save_result(res)
    shares = {r["top_states"]: r["cumulative_share"] for r in res.rows}
    assert shares[8] >= 0.90  # paper: ~95%
    assert shares[1] >= 0.5  # heavy skew toward a single state
