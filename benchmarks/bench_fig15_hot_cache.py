"""Figure 15: effect of caching hot transition-table rows (Huffman).

The paper reports ~50% (1.5x) gain for Huffman decoding, its application
with the most states.
"""

from repro.bench.experiments import fig15_hot_cache


def test_fig15_reproduction(benchmark, save_result):
    res = benchmark.pedantic(fig15_hot_cache, rounds=1, iterations=1)
    save_result(res)
    for row in res.rows:
        assert row["gain"] > 1.15, row  # caching always helps here
        assert row["hit_rate"] > 0.8  # hot-state skew gives a high hit rate
    gains = [r["gain"] for r in res.rows]
    assert max(gains) > 1.3  # paper: ~1.5x
