"""Ablation: speculation success across the div-m machine family.

gcd(2, m) == 1 machines permute residues (no convergence): success is the
blind rate k/m. Machines with a shared factor converge and look-back
collapses the state set — m=8's state is literally the last three bits, so
success is 1.0 at any k >= 1.
"""

import pytest

from repro.bench.experiments import ablation_divm_family


def test_divm_family(benchmark, save_result):
    res = benchmark.pedantic(ablation_divm_family, rounds=1, iterations=1)
    save_result(res)
    rows = {r["modulus"]: r for r in res.rows}
    # non-convergent: success equals the blind rate k/m (within noise)
    for m in (3, 5, 7):
        assert rows[m]["success"] == pytest.approx(
            rows[m]["blind_rate_k_over_m"], abs=0.08
        )
    # convergent: success well above the blind rate
    for m in (6, 8, 12):
        assert rows[m]["success"] > rows[m]["blind_rate_k_over_m"] + 0.2
    # m=8: the state is the last 3 bits — suffix-determined, success 1.0
    assert rows[8]["success"] == pytest.approx(1.0)
