"""Ablation: nested-loop vs hash runtime checks as k grows.

Validates the code generator's selection rule (hash iff k > 12) in the
miss-heavy regime that rule guards against.
"""

from repro.bench.experiments import ablation_check_crossover


def test_check_crossover(benchmark, save_result):
    res = benchmark.pedantic(
        lambda: ablation_check_crossover(ks=(2, 4, 8, 12, 16, 24, 48)),
        rounds=1, iterations=1,
    )
    save_result(res)
    winners = {r["k"]: r["winner"] for r in res.rows}
    assert winners[2] == "nested"
    assert winners[4] == "nested"
    assert winners[24] == "hash"
    assert winners[48] == "hash"
    # the crossover falls in the paper's neighbourhood (k ~ 12)
    boundary = [k for k in sorted(winners) if winners[k] == "hash"]
    assert boundary and 8 <= boundary[0] <= 24
