"""Shared helpers for the benchmark suite.

Every benchmark prints its reproduction table and archives it under
``benchmarks/out/`` so a ``pytest benchmarks/ --benchmark-only`` run leaves
the full set of paper tables/figures on disk.

Benchmark input size defaults to 400k items (override with
``REPRO_BENCH_ITEMS``); statistics are projected to the paper's 2^30-scale
inputs before pricing, so the reported speedups are paper-comparable.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"

os.environ.setdefault("REPRO_BENCH_ITEMS", "400000")


@pytest.fixture(scope="session")
def save_result():
    """Print an ExperimentResult and archive it under benchmarks/out/."""

    OUT_DIR.mkdir(exist_ok=True)

    def _save(result) -> str:
        text = result.to_text()
        path = OUT_DIR / f"{result.experiment_id}.txt"
        path.write_text(text + "\n")
        print("\n" + text)
        return text

    return _save
