"""Table 4: Huffman FSM sizes for the four input texts plus 'combined'."""

from repro.bench.experiments import table4_huffman_inputs


def test_table4_reproduction(benchmark, save_result):
    res = benchmark.pedantic(
        lambda: table4_huffman_inputs(chars_per_book=1 << 17),
        rounds=1, iterations=1,
    )
    save_result(res)
    states = [r["fsm_states"] for r in res.rows]
    # every machine is in the paper's band and 'combined' is the largest
    assert all(140 <= s <= 240 for s in states)
    assert states[-1] == max(states)
