"""Figure 11: merge scalability for div7 (sequential vs parallel,
spec-k and spec-N, at 20/40/80 thread blocks)."""

from benchmarks.scaling_common import run_and_check


def test_fig11_reproduction(benchmark, save_result):
    run_and_check("div7", benchmark, save_result)
