"""Compare stepping kernels per application and write ``BENCH_kernels.json``.

For every paper application this script measures the steady-state local
processing time of each registered stepping kernel (lockstep through the
incumbent :func:`repro.core.local.process_chunks`; stride kernels through
the composed-table path in :mod:`repro.core.kernels`) and reports the
measured speedup over lockstep, the autotuner's choice, table build costs,
and table footprints.

Run standalone (it is an argparse script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_kernels.py --items 400000
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick --check

``--check`` exits non-zero if the autotuner selected a kernel more than
10% slower than lockstep on any app — the CI guard against a cost model
or measurement regression.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.apps.registry import APPLICATIONS, get_application
from repro.core.autotune import choose_kernel
from repro.core.kernels import (
    DEFAULT_TABLE_BUDGET_BYTES,
    KERNELS,
    stride_table_bytes,
)
from repro.fsm.alphabet import compact_alphabet

CHECK_SLACK = 1.10  # selected kernel may be at most 10% slower than lockstep


def bench_app(
    name: str,
    *,
    num_items: int,
    num_chunks: int,
    k: int | None,
    repeats: int,
    include_scalar: bool,
    seed: int = 1,
) -> dict:
    """Measure every kernel on one application; return a JSON-ready row."""
    app = get_application(name)
    dfa, inputs = app.build_instance(num_items, seed=seed)
    comp = compact_alphabet(dfa.table)
    k_eff = app.best_k if k is None else k
    if k_eff is None:
        k_eff = dfa.num_states
    candidates = ["lockstep", "stride2", "stride4"]
    if include_scalar:
        candidates.append("scalar")
    choice = choose_kernel(
        dfa,
        inputs,
        num_chunks=num_chunks,
        k=k_eff,
        lookback=app.default_lookback,
        probe_items=inputs.size,
        repeats=repeats,
        candidates=tuple(candidates),
    )
    base = choice.measured_s.get("lockstep")
    row = {
        "application": name,
        "num_items": int(inputs.size),
        "num_states": dfa.num_states,
        "num_inputs": dfa.num_inputs,
        "num_classes": comp.num_classes,
        "compression": round(comp.compression, 2),
        "num_chunks": num_chunks,
        "k": k_eff,
        "selected": choice.kernel,
        "kernels": {},
    }
    for kname, t in sorted(choice.measured_s.items()):
        entry = {
            "measured_s": t,
            "throughput_items_per_s": inputs.size / t if t else None,
            "speedup_vs_lockstep": (base / t) if base and t else None,
            "modeled_s": choice.modeled_s.get(kname),
        }
        if kname in choice.build_s:
            entry["table_build_s"] = choice.build_s[kname]
        m = KERNELS[kname].stride
        if m > 1:
            entry["table_bytes"] = stride_table_bytes(
                comp.num_classes, dfa.num_states, m
            )
        row["kernels"][kname] = entry
    return row


def check_rows(rows: list[dict]) -> list[str]:
    """Return violations of the selection guarantee (empty = all good)."""
    problems = []
    for row in rows:
        kernels = row["kernels"]
        base = kernels.get("lockstep", {}).get("measured_s")
        sel = kernels.get(row["selected"], {}).get("measured_s")
        if base is None or sel is None:
            continue
        if sel > base * CHECK_SLACK:
            problems.append(
                f"{row['application']}: selected {row['selected']} "
                f"({sel * 1e3:.2f} ms) is {sel / base:.2f}x lockstep "
                f"({base * 1e3:.2f} ms), above the {CHECK_SLACK:.2f}x bound"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--apps", nargs="*", default=sorted(APPLICATIONS),
        choices=sorted(APPLICATIONS), help="applications to bench (default all)",
    )
    ap.add_argument("--items", type=int, default=400_000, help="input symbols")
    ap.add_argument("--chunks", type=int, default=2048, help="chunk count")
    ap.add_argument(
        "--k", type=int, default=None,
        help="speculation width (default: each app's paper-best k)",
    )
    ap.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    ap.add_argument(
        "--quick", action="store_true",
        help="small CI-sized run (64k items, 256 chunks, 2 repeats)",
    )
    ap.add_argument(
        "--scalar", action="store_true",
        help="also measure the scalar kernel (slow on large inputs)",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="exit 1 if any selected kernel is >10%% slower than lockstep",
    )
    ap.add_argument("--out", default="BENCH_kernels.json", help="output path")
    args = ap.parse_args(argv)
    if args.quick:
        args.items = min(args.items, 64_000)
        args.chunks = min(args.chunks, 256)
        args.repeats = min(args.repeats, 2)

    rows = []
    for name in args.apps:
        t0 = time.perf_counter()
        row = bench_app(
            name,
            num_items=args.items,
            num_chunks=args.chunks,
            k=args.k,
            repeats=args.repeats,
            include_scalar=args.scalar,
        )
        row["bench_wall_s"] = round(time.perf_counter() - t0, 3)
        rows.append(row)
        s4 = row["kernels"].get("stride4", {}).get("speedup_vs_lockstep")
        print(
            f"{name:8s} C={row['num_classes']:<4d} selected={row['selected']:9s}"
            f" stride4 speedup={s4:.2f}x" if s4 else
            f"{name:8s} C={row['num_classes']:<4d} selected={row['selected']}"
        )

    report = {
        "benchmark": "kernels",
        "items": args.items,
        "chunks": args.chunks,
        "table_budget_bytes": DEFAULT_TABLE_BUDGET_BYTES,
        "check_slack": CHECK_SLACK,
        "rows": rows,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.out}")

    if args.check:
        problems = check_rows(rows)
        for p in problems:
            print(f"CHECK FAILED: {p}", file=sys.stderr)
        if problems:
            return 1
        print("check passed: every selected kernel within 10% of lockstep")
    return 0


if __name__ == "__main__":
    sys.exit(main())
