"""Table 3: application characteristics, plus engine throughput baselines.

Reproduces the paper's application table (machine sizes, input kinds, CPU
baselines) and measures the *real* wall-clock throughput of the functional
NumPy engine on each application — the honest "what does this simulator
actually cost to run" number.
"""

import pytest

import repro
from repro.bench.experiments import table3_applications
from repro.bench.runner import app_instance, bench_items
from repro.apps.registry import APPLICATIONS, get_application


def test_table3_reproduction(benchmark, save_result):
    res = benchmark.pedantic(
        lambda: table3_applications(num_items=bench_items()),
        rounds=1, iterations=1,
    )
    save_result(res)
    rows = {r["application"]: r for r in res.rows}
    # Exactly reproducible machine dimensions:
    assert rows["html"]["num_states"] == 38
    assert rows["html"]["num_inputs"] == 128
    assert rows["div7"]["num_states"] == 7
    assert rows["regex1"]["num_inputs"] == 7
    assert rows["regex2"]["num_inputs"] == 3
    # Huffman decoder lands in Table 4's band:
    assert 150 <= rows["huffman"]["num_states"] <= 230


@pytest.mark.parametrize("name", sorted(APPLICATIONS))
def test_engine_wall_time(benchmark, name):
    app = get_application(name)
    dfa, inputs = app_instance(name, bench_items(), 1)
    benchmark(
        repro.run_speculative,
        dfa,
        inputs,
        k=app.best_k,
        num_blocks=20,
        threads_per_block=256,
        lookback=app.default_lookback,
        measure_success=False,
        price=False,
    )
