"""Measure the multi-pattern engine and write ``BENCH_multipattern.json``.

The paper's NIDS scenario at rule-set scale: ``P`` Snort-like literal
rules compiled to streaming-search DFAs over one shared alphabet, all
checked against the same traffic stream. Two executions are compared at
each group size:

* **per-pattern baseline** — one speculative pass per rule (the stream is
  re-read and re-encoded ``P`` times; per-pattern input-class
  compression);
* **batched one-pass** — :func:`repro.core.multipattern.run_multipattern`
  with ``route="batched"``: joint cross-pattern alphabet compaction, a
  block-diagonal union table, every pattern's lanes advanced by one
  fused gather per symbol.

The product route is measured too whenever the minimised product fits
the state budget. Group compilation (``stack_machines``) and per-pattern
``compress_inputs`` are both excluded from timing — they are one-time
costs amortized across the stream in either design.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_multipattern.py
    PYTHONPATH=src python benchmarks/bench_multipattern.py --quick --check

``--check`` exits non-zero unless the batched one-pass beats the
per-pattern baseline by at least ``3.0x`` aggregate at ``P = 20`` — the
CI guard for the multi-pattern engine.

``BENCH_multipattern.json`` schema::

    {
      "benchmark": "multipattern",
      "items": int, "repeats": int, "chunks": int, "k": int,
      "check_min_speedup": float, "check_at_patterns": int,
      "rows": [
        {
          "patterns": int,
          "union_states": int, "joint_classes": int,
          "mean_pattern_classes": float,
          "backend": str,          # best backend (headline numbers below)
          "backends": {name: {"baseline_s": float, "batched_s": float,
                               "aggregate_speedup": float}},
          "baseline_s": float, "batched_s": float,
          "product_s": float | null, "product_states": int | null,
          "aggregate_speedup": float,
          "batched_pattern_items_per_s": float,
          "bench_wall_s": float
        }, ...
      ]
    }
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.engine import run_speculative
from repro.core.multipattern import (
    DEFAULT_PRODUCT_BUDGET,
    _build_product,
    run_multipattern,
    stack_machines,
)
from repro.fsm.alphabet import Alphabet
from repro.fsm.product import ProductStateBudget
from repro.regex import compile_search, compress_inputs
from repro.util.rng import ensure_rng

CHECK_MIN_SPEEDUP = 3.0  # batched must beat the per-pattern loop ...
CHECK_AT_PATTERNS = 20  # ... by this much at this group size

ALPHABET = tuple("abcdefghijklmnop")  # 16-symbol "payload byte" space


def make_rules(num_patterns: int, *, seed: int = 0) -> list:
    """``num_patterns`` literal signatures as streaming-search DFAs."""
    rng = ensure_rng(seed)
    machines = []
    alphabet = Alphabet.from_symbols(ALPHABET)
    seen = set()
    while len(machines) < num_patterns:
        length = int(rng.integers(4, 9))
        lit = "".join(
            ALPHABET[int(c)]
            for c in rng.integers(0, len(ALPHABET), size=length)
        )
        if lit in seen:
            continue
        seen.add(lit)
        machines.append(
            compile_search(lit, alphabet, name=f"sig-{len(machines)}")
        )
    return machines


def make_stream(num_items: int, *, seed: int = 1) -> np.ndarray:
    rng = ensure_rng(seed)
    return rng.integers(0, len(ALPHABET), size=num_items).astype(np.int32)


def bench_group(
    num_patterns: int,
    stream: np.ndarray,
    *,
    k: int,
    num_chunks: int,
    repeats: int,
    verify_items: int = 20_000,
) -> dict:
    """Measure one group size; return a JSON-ready row."""
    machines = make_rules(num_patterns, seed=num_patterns)
    compressed = [compress_inputs(m) for m in machines]
    stack = stack_machines(machines)

    # Sanity: both executions agree with the sequential reference on a
    # prefix before anything is timed.
    from repro.fsm.run import run_reference_trace

    prefix = stream[:verify_items]
    sample = run_multipattern(
        machines, prefix, k=k, num_chunks=max(4, num_chunks // 16),
        route="batched", stack=stack,
    )
    for pr, m in zip(sample.patterns, machines):
        tr = run_reference_trace(m, prefix)
        assert pr.final_state == int(tr[-1]), m.name
        assert np.array_equal(
            pr.match_positions, np.flatnonzero(m.accepting[tr])
        ), m.name

    # Same-backend comparison on every available backend: the native
    # P-loop is where group-aware lane collapse lives (the vectorized
    # union pass cannot collapse across blocks), so the headline speedup
    # is the best backend's — but the vectorized row is always reported.
    from repro.core.native import native_available

    backends = ["vectorized"] + (["native"] if native_available() else [])
    per_backend: dict = {}
    for be in backends:
        baseline = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for comp in compressed:
                run_speculative(
                    comp.dfa, comp.encode_inputs(stream), k=k,
                    num_blocks=1, threads_per_block=num_chunks, collect=(),
                    backend=be,
                )
            baseline = min(baseline, time.perf_counter() - t0)
        batched = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            run_multipattern(
                machines, stream, k=k, num_chunks=num_chunks,
                route="batched", collect=(), stack=stack, backend=be,
            )
            batched = min(batched, time.perf_counter() - t0)
        per_backend[be] = {
            "baseline_s": baseline,
            "batched_s": batched,
            "aggregate_speedup": baseline / batched,
        }
    best_backend = max(
        per_backend, key=lambda b: per_backend[b]["aggregate_speedup"]
    )
    baseline = per_backend[best_backend]["baseline_s"]
    batched = per_backend[best_backend]["batched_s"]

    product_s = None
    product_states = None
    try:
        prod = _build_product(stack, budget=DEFAULT_PRODUCT_BUDGET)
    except ProductStateBudget:
        pass
    else:
        product_states = int(prod.dfa.num_states)
        product_s = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            run_multipattern(
                machines, stream, k=k, num_chunks=num_chunks,
                route="product", collect=(), stack=stack,
            )
            product_s = min(product_s, time.perf_counter() - t0)

    return {
        "patterns": num_patterns,
        "union_states": int(stack.union_dfa.num_states),
        "joint_classes": int(stack.joint.num_classes),
        "mean_pattern_classes": float(
            np.mean([c.num_classes for c in compressed])
        ),
        "backend": best_backend,
        "backends": per_backend,
        "baseline_s": baseline,
        "batched_s": batched,
        "product_s": product_s,
        "product_states": product_states,
        "aggregate_speedup": baseline / batched,
        "batched_pattern_items_per_s": (
            num_patterns * stream.size / batched
        ),
    }


def check_rows(rows: list[dict]) -> list[str]:
    """Return check violations (empty = the multipattern gate passes)."""
    problems = []
    gate = [r for r in rows if r["patterns"] == CHECK_AT_PATTERNS]
    if not gate:
        problems.append(f"no row at P={CHECK_AT_PATTERNS} to gate on")
        return problems
    sp = gate[0]["aggregate_speedup"]
    if sp < CHECK_MIN_SPEEDUP:
        problems.append(
            f"batched one-pass is only {sp:.2f}x the per-pattern baseline "
            f"at P={CHECK_AT_PATTERNS} (need {CHECK_MIN_SPEEDUP:.1f}x)"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--patterns", nargs="*", type=int, default=[5, 20, 100],
        help="group sizes to sweep (default 5 20 100)",
    )
    ap.add_argument("--items", type=int, default=400_000, help="stream symbols")
    ap.add_argument("--chunks", type=int, default=256, help="chunk count")
    ap.add_argument("--k", type=int, default=4, help="per-pattern spec width")
    ap.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    ap.add_argument(
        "--quick", action="store_true",
        help="small CI-sized run (128k items, 2 repeats)",
    )
    ap.add_argument(
        "--check", action="store_true",
        help=(
            f"exit 1 unless batched >= {CHECK_MIN_SPEEDUP}x the per-pattern "
            f"baseline at P={CHECK_AT_PATTERNS}"
        ),
    )
    ap.add_argument(
        "--out", default="BENCH_multipattern.json", help="output path"
    )
    args = ap.parse_args(argv)
    if args.quick:
        args.items = min(args.items, 128_000)
        args.repeats = min(args.repeats, 2)

    stream = make_stream(args.items)
    rows = []
    for p in args.patterns:
        t0 = time.perf_counter()
        row = bench_group(
            p, stream, k=args.k, num_chunks=args.chunks,
            repeats=args.repeats,
        )
        row["bench_wall_s"] = round(time.perf_counter() - t0, 3)
        rows.append(row)
        print(
            f"P={p:<4d} union={row['union_states']:5d} states "
            f"C={row['joint_classes']:3d} "
            f"backend={row['backend']:10s} "
            f"baseline={row['baseline_s']:.3f}s "
            f"one-pass={row['batched_s']:.3f}s "
            f"speedup={row['aggregate_speedup']:.2f}x"
            + (
                f"  product={row['product_s']:.3f}s "
                f"({row['product_states']} states)"
                if row["product_s"] is not None
                else ""
            )
        )

    report = {
        "benchmark": "multipattern",
        "items": args.items,
        "repeats": args.repeats,
        "chunks": args.chunks,
        "k": args.k,
        "check_min_speedup": CHECK_MIN_SPEEDUP,
        "check_at_patterns": CHECK_AT_PATTERNS,
        "rows": rows,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.out}")

    if args.check:
        problems = check_rows(rows)
        for p in problems:
            print(f"CHECK FAILED: {p}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"check passed: batched one-pass >= {CHECK_MIN_SPEEDUP}x the "
            f"per-pattern baseline at P={CHECK_AT_PATTERNS}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
