"""Measure supervision overhead and recovery latency; write ``BENCH_resilience.json``.

Two questions, answered against the same :class:`repro.core.mp_executor.ScaleoutPool`:

1. **Fault-free overhead** — what does the supervision loop (custom worker
   pool, per-task deadlines, result validation, liveness sweeps) cost when
   nothing fails? Measured as supervised throughput vs the same pool with
   ``resilience=None`` (the pre-resilience collection semantics). The
   acceptance bound is <3%.
2. **Recovery latency** — how much wall clock does one killed worker add?
   Measured as the run-time delta between a clean supervised run and a run
   with a deterministic :func:`repro.core.faultinject.kill_worker` drill,
   alongside the recovery actions taken.

Run standalone (argparse script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_resilience.py --items 2000000
    PYTHONPATH=src python benchmarks/bench_resilience.py --quick --check

``--check`` exits non-zero if fault-free supervision overhead exceeds the
bound or a recovery run degrades/returns a wrong state — the CI guard.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.apps.registry import APPLICATIONS, get_application
from repro.core import faultinject as fi
from repro.core.mp_executor import ScaleoutPool
from repro.fsm.run import run_reference

OVERHEAD_BOUND_PCT = 3.0  # acceptance: fault-free supervision cost < 3%


def build_workload(app_name: str, num_items: int, seed: int):
    """One paper application's machine plus a pool-scale input."""
    app = get_application(app_name)
    return app.build_instance(num_items, seed=seed)


def timed_runs(pool: ScaleoutPool, inputs, repeats: int) -> list[float]:
    """Per-run wall-clock seconds (first call excluded: spawn + publish warm-up)."""
    pool.run(inputs)  # warm-up: spawn workers, publish input
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        pool.run(inputs)
        times.append(time.perf_counter() - t0)
    return times


def bench_overhead(dfa, inputs, *, num_workers: int, k: int | None,
                   repeats: int) -> dict:
    """Supervised vs unsupervised throughput on identical fault-free runs."""
    with ScaleoutPool(dfa, num_workers=num_workers, k=k,
                      resilience=None, fault_plan=fi.FaultPlan()) as pool:
        base = timed_runs(pool, inputs, repeats)
    with ScaleoutPool(dfa, num_workers=num_workers, k=k,
                      fault_plan=fi.FaultPlan()) as pool:
        sup = timed_runs(pool, inputs, repeats)
    base_s = statistics.median(base)
    sup_s = statistics.median(sup)
    return {
        "baseline_median_s": base_s,
        "supervised_median_s": sup_s,
        "baseline_throughput_items_per_s": inputs.size / base_s,
        "supervised_throughput_items_per_s": inputs.size / sup_s,
        "overhead_pct": (sup_s / base_s - 1.0) * 100.0,
        "repeats": repeats,
    }


def bench_recovery(dfa, inputs, *, num_workers: int, k: int | None,
                   repeats: int) -> dict:
    """Wall-clock cost of recovering one killed worker mid-run."""
    ref = run_reference(dfa, inputs)
    clean_s: list[float] = []
    faulted_s: list[float] = []
    recovered = []
    with ScaleoutPool(dfa, num_workers=num_workers, k=k,
                      fault_plan=fi.FaultPlan()) as pool:
        clean_s = timed_runs(pool, inputs, repeats)
    for i in range(repeats):
        plan = fi.FaultPlan([fi.kill_worker(i % num_workers, at_task=1)])
        with ScaleoutPool(dfa, num_workers=num_workers, k=k,
                          fault_plan=plan) as pool:
            pool.run(inputs)  # warm-up; the kill is armed for task seq 1
            t0 = time.perf_counter()
            res = pool.run(inputs)
            faulted_s.append(time.perf_counter() - t0)
        recovered.append({
            "correct": bool(res.final_state == ref),
            "degraded": bool(res.degraded),
            "worker_deaths": res.recovery.worker_deaths if res.recovery else 0,
            "respawns": res.recovery.respawns if res.recovery else 0,
            "retries": res.recovery.retries if res.recovery else 0,
        })
    clean = statistics.median(clean_s)
    faulted = statistics.median(faulted_s)
    return {
        "clean_median_s": clean,
        "killed_worker_median_s": faulted,
        "recovery_latency_s": max(0.0, faulted - clean),
        "runs": recovered,
    }


def check_report(report: dict) -> list[str]:
    """Return acceptance violations (empty = all good)."""
    problems = []
    pct = report["overhead"]["overhead_pct"]
    if pct >= OVERHEAD_BOUND_PCT:
        problems.append(
            f"fault-free supervision overhead {pct:.2f}% exceeds the "
            f"{OVERHEAD_BOUND_PCT:.1f}% bound"
        )
    for i, run in enumerate(report["recovery"]["runs"]):
        if not run["correct"]:
            problems.append(f"recovery run {i} returned a wrong final state")
        if run["degraded"]:
            problems.append(
                f"recovery run {i} degraded instead of recovering in place"
            )
        if run["worker_deaths"] != 1:
            problems.append(
                f"recovery run {i} saw {run['worker_deaths']} deaths, expected 1"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--items", type=int, default=2_000_000, help="input symbols")
    ap.add_argument(
        "--app", default="huffman", choices=sorted(APPLICATIONS),
        help="paper application supplying the machine and input",
    )
    ap.add_argument("--workers", type=int, default=4, help="pool workers")
    ap.add_argument("--k", type=int, default=None,
                    help="speculation width (default spec-N)")
    ap.add_argument("--repeats", type=int, default=5, help="timed runs per config")
    ap.add_argument("--quick", action="store_true",
                    help="small CI-sized run (200k items, 3 repeats)")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 on overhead/recovery acceptance violations")
    ap.add_argument("--out", default="BENCH_resilience.json", help="output path")
    args = ap.parse_args(argv)
    if args.quick:
        args.items = min(args.items, 200_000)
        args.repeats = min(args.repeats, 3)

    dfa, inputs = build_workload(args.app, args.items, seed=7)
    overhead = bench_overhead(dfa, inputs, num_workers=args.workers,
                              k=args.k, repeats=args.repeats)
    print(
        f"fault-free: baseline {overhead['baseline_median_s'] * 1e3:.1f} ms, "
        f"supervised {overhead['supervised_median_s'] * 1e3:.1f} ms, "
        f"overhead {overhead['overhead_pct']:+.2f}%"
    )
    recovery = bench_recovery(dfa, inputs, num_workers=args.workers,
                              k=args.k, repeats=args.repeats)
    print(
        f"recovery:   clean {recovery['clean_median_s'] * 1e3:.1f} ms, "
        f"one kill {recovery['killed_worker_median_s'] * 1e3:.1f} ms, "
        f"latency {recovery['recovery_latency_s'] * 1e3:.1f} ms"
    )

    report = {
        "benchmark": "resilience",
        "application": args.app,
        "items": int(inputs.size),
        "states": dfa.num_states,
        "alphabet": dfa.num_inputs,
        "workers": args.workers,
        "k": args.k,
        "overhead_bound_pct": OVERHEAD_BOUND_PCT,
        "overhead": overhead,
        "recovery": recovery,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.out}")

    if args.check:
        problems = check_report(report)
        for p in problems:
            print(f"CHECK FAILED: {p}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"check passed: overhead {overhead['overhead_pct']:.2f}% < "
            f"{OVERHEAD_BOUND_PCT:.1f}%, all recoveries exact"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
