"""Figure 10: merge scalability for html (sequential vs parallel,
spec-k and spec-N, at 20/40/80 thread blocks)."""

from benchmarks.scaling_common import run_and_check


def test_fig10_reproduction(benchmark, save_result):
    run_and_check("html", benchmark, save_result)
