"""Figure 6: speculation success rates vs k for every application."""

import pytest

from repro.bench.experiments import fig6_success_rates


def test_fig6_reproduction(benchmark, save_result):
    res = benchmark.pedantic(
        lambda: fig6_success_rates(ks=(1, 2, 4, 8, 16)), rounds=1, iterations=1
    )
    save_result(res)
    rates = {(r["application"], r["k"]): r["success_rate"] for r in res.rows}

    # html and regex2: ~1.0 already at k=1 (the paper's best k=1 apps)
    assert rates[("html", 1)] > 0.98
    assert rates[("regex2", 1)] > 0.98

    # regex1 climbs and reaches ~1.0 by k=8
    assert rates[("regex1", 1)] < 0.95
    assert rates[("regex1", 8)] > 0.99
    assert rates[("regex1", 4)] >= rates[("regex1", 1)]

    # huffman rises with k
    assert rates[("huffman", 1)] < rates[("huffman", 4)]
    assert rates[("huffman", 8)] > 0.95

    # div7 is linear: success ~ k/7
    assert rates[("div7", 1)] == pytest.approx(1 / 7, abs=0.05)
    assert rates[("div7", 4)] == pytest.approx(4 / 7, abs=0.08)
