"""Measure convergence-aware lane collapse and write ``BENCH_convergence.json``.

For every application × speculation width this script times the full
:func:`repro.core.engine.run_speculative` pipeline with the convergence
layer off, forced on, and in probe-driven ``auto`` mode. Repeats are
*interleaved* (off/on/auto/off/on/auto/…) and aggregated min-of-repeats so
a background load spike hits every configuration equally instead of biasing
one label. Alongside wall-clock it records the convergence counters —
physical gathers, collapse scans, converged chunks, skipped merge checks —
and verifies every configuration against the sequential reference.

Run standalone (it is an argparse script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_convergence.py
    PYTHONPATH=src python benchmarks/bench_convergence.py --quick --check

``--check`` is the CI guard: it exits non-zero unless lane collapse wins
on the convergent applications (huffman, html) at k=8, stays within the
noise bound on never-converging Div7 in ``auto`` mode, and the convergence
counters show huffman fully converged with zero merge-check comparisons.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.apps.registry import APPLICATIONS, get_application
from repro.core.engine import run_speculative
from repro.fsm.run import run_reference

MODES = ("off", "on", "auto")

# --check bounds. Full scale asserts a regression guard below the measured
# speedups (huffman 2.1x, html 1.5x at k=8 on the reference machine) so CI
# noise does not flap; --quick runs are fixed-cost dominated and only need
# to show collapse is not pessimal.
WIN_APPS = ("huffman", "html")
WIN_FULL = 1.30
WIN_QUICK = 0.95
DIV7_OVERHEAD_FULL = 0.05
DIV7_OVERHEAD_QUICK = 0.25


def bench_case(
    name: str,
    *,
    num_items: int,
    num_blocks: int,
    threads_per_block: int,
    k: int,
    repeats: int,
    seed: int = 7,
) -> dict:
    """Time one application at one speculation width; return a JSON row."""
    app = get_application(name)
    dfa, inputs = app.build(num_items, seed=seed)
    ref = run_reference(dfa, inputs)
    kw = dict(
        k=k,
        num_blocks=num_blocks,
        threads_per_block=threads_per_block,
        lookback=app.default_lookback,
        price=False,
    )

    best: dict[str, float] = {m: float("inf") for m in MODES}
    results = {}
    for _ in range(repeats):
        for mode in MODES:
            t0 = time.perf_counter()
            r = run_speculative(dfa, inputs, collapse=mode, **kw)
            dt = time.perf_counter() - t0
            if r.final_state != ref:
                raise AssertionError(
                    f"{name} k={k} collapse={mode}: final state "
                    f"{r.final_state} != reference {ref}"
                )
            best[mode] = min(best[mode], dt)
            results[mode] = r

    row = {
        "application": name,
        "num_items": int(inputs.size),
        "num_chunks": num_blocks * threads_per_block,
        "k": k,
        "lookback": app.default_lookback,
        "modes": {},
    }
    off = best["off"]
    for mode in MODES:
        s = results[mode].stats
        row["modes"][mode] = {
            "resolved": results[mode].config.collapse,
            "measured_s": best[mode],
            "speedup_vs_off": off / best[mode] if best[mode] else None,
            "local_gathers": s.local_gathers,
            "collapse_scans": s.collapse_scans,
            "lanes_collapsed": s.lanes_collapsed,
            "chunks_converged": s.chunks_converged,
            "checks_skipped": s.checks_skipped,
            "check_comparisons": s.check_comparisons,
        }
    return row


def check_rows(rows: list[dict], *, quick: bool) -> list[str]:
    """Return guard violations (empty = all good)."""
    win_bound = WIN_QUICK if quick else WIN_FULL
    overhead_bound = DIV7_OVERHEAD_QUICK if quick else DIV7_OVERHEAD_FULL
    problems = []
    by_key = {(r["application"], r["k"]): r for r in rows}

    # The shipping default is probe-driven auto; that's what the guard
    # protects. Forced `on` (fixed default cadence) is recorded in the
    # JSON but not asserted — the probe exists precisely because one fixed
    # cadence loses on some machines.
    for app in WIN_APPS:
        row = by_key.get((app, 8))
        if row is None:
            continue
        auto = row["modes"]["auto"]
        if auto["speedup_vs_off"] < win_bound:
            problems.append(
                f"{app} k=8: collapse=auto speedup "
                f"{auto['speedup_vs_off']:.2f}x below the "
                f"{win_bound:.2f}x bound"
            )
        if not auto["collapse_scans"] or not auto["lanes_collapsed"]:
            problems.append(f"{app} k=8: collapse=auto never collapsed a lane")
        off_g = row["modes"]["off"]["local_gathers"]
        if auto["local_gathers"] >= off_g:
            problems.append(
                f"{app} k=8: physical gathers did not shrink "
                f"({auto['local_gathers']} >= {off_g})"
            )

    row = by_key.get(("huffman", 8))
    if row is not None:
        auto = row["modes"]["auto"]
        if auto["chunks_converged"] != row["num_chunks"]:
            problems.append(
                f"huffman k=8: only {auto['chunks_converged']}/"
                f"{row['num_chunks']} chunks converged"
            )
        if auto["check_comparisons"] != 0 or not auto["checks_skipped"]:
            problems.append(
                "huffman k=8: converged run still paid merge checks "
                f"(comparisons={auto['check_comparisons']}, "
                f"skipped={auto['checks_skipped']})"
            )

    for (app, k), row in sorted(by_key.items()):
        if app != "div7":
            continue
        auto = row["modes"]["auto"]
        if auto["resolved"] != "off":
            problems.append(
                f"div7 k={k}: auto resolved to {auto['resolved']!r}, "
                "expected the probe to disable collapse"
            )
        overhead = 1.0 / auto["speedup_vs_off"] - 1.0
        if overhead > overhead_bound:
            problems.append(
                f"div7 k={k}: auto overhead {overhead * 100:.1f}% above the "
                f"{overhead_bound * 100:.0f}% bound"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--apps", nargs="*", default=["huffman", "html", "div7", "regex1"],
        choices=sorted(APPLICATIONS), help="applications to bench",
    )
    ap.add_argument(
        "--items", type=int, default=1 << 22,
        help="input symbols (default 2^22: long chunks amortize fixed costs)",
    )
    ap.add_argument("--blocks", type=int, default=8, help="thread blocks")
    ap.add_argument(
        "--threads", type=int, default=32,
        help="threads per block (warp multiple)",
    )
    ap.add_argument(
        "--k", nargs="*", type=int, default=[4, 8, 16],
        help="speculation widths to sweep",
    )
    ap.add_argument("--repeats", type=int, default=5, help="min-of repeats")
    ap.add_argument(
        "--quick", action="store_true",
        help="small CI-sized run (2^19 items, 3 repeats, k=8 only)",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="exit 1 on a collapse win/overhead/counter regression",
    )
    ap.add_argument("--out", default="BENCH_convergence.json", help="output path")
    args = ap.parse_args(argv)
    if args.quick:
        # 2^19 keeps chunks long enough (2048 symbols at 256 chunks) for
        # html's lanes to reach their convergence point mid-chunk.
        args.items = min(args.items, 1 << 19)
        args.repeats = min(args.repeats, 3)
        args.k = [8]

    rows = []
    for name in args.apps:
        for k in args.k:
            t0 = time.perf_counter()
            row = bench_case(
                name,
                num_items=args.items,
                num_blocks=args.blocks,
                threads_per_block=args.threads,
                k=k,
                repeats=args.repeats,
            )
            row["bench_wall_s"] = round(time.perf_counter() - t0, 3)
            rows.append(row)
            on = row["modes"]["on"]
            auto = row["modes"]["auto"]
            print(
                f"{name:8s} k={k:<3d} on={on['speedup_vs_off']:.2f}x "
                f"auto={auto['speedup_vs_off']:.2f}x "
                f"[{auto['resolved']}] conv={on['chunks_converged']}/"
                f"{row['num_chunks']} skipped={on['checks_skipped']}"
            )

    report = {
        "benchmark": "convergence",
        "items": args.items,
        "num_chunks": args.blocks * args.threads,
        "repeats": args.repeats,
        "quick": args.quick,
        "rows": rows,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"wrote {args.out}")

    if args.check:
        problems = check_rows(rows, quick=args.quick)
        for p in problems:
            print(f"CHECK FAILED: {p}", file=sys.stderr)
        if problems:
            return 1
        print(
            "check passed: collapse wins on convergent apps, stays in the "
            "noise on div7, and converged chunks skip every merge check"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
