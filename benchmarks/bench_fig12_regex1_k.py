"""Figure 12: speedup vs k for regular expression 1 (best around k=8).

The success rate climbs with k (Figure 6), so speedup improves until the
speculation is reliable; the paper finds k=8 optimal.
"""

from repro.bench.experiments import fig12_13_k_sweep


def test_fig12_reproduction(benchmark, save_result):
    res = benchmark.pedantic(
        lambda: fig12_13_k_sweep("regex1"), rounds=1, iterations=1
    )
    save_result(res)
    speeds = {r["k"]: r["speedup"] for r in res.rows}
    rates = {r["k"]: r["success"] for r in res.rows}
    # low k suffers from misses; k=8 reaches ~1.0 success and outperforms
    assert rates[8] > 0.99
    assert speeds[8] > speeds[1]
    assert speeds[8] > speeds[2]
