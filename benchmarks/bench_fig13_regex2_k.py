"""Figure 13: speedup vs k for regular expression 2 (best at k=1).

Success is ~1.0 already at k=1 on the paper's workload, so extra
speculation only adds redundant work and speedup decreases monotonically.
"""

from repro.bench.experiments import fig12_13_k_sweep


def test_fig13_reproduction(benchmark, save_result):
    res = benchmark.pedantic(
        lambda: fig12_13_k_sweep("regex2"), rounds=1, iterations=1
    )
    save_result(res)
    rows = res.rows
    assert rows[0]["k"] == 1
    assert rows[0]["success"] > 0.99
    speeds = [r["speedup"] for r in rows]
    assert speeds[0] == max(speeds)  # best k = 1
    assert speeds == sorted(speeds, reverse=True)  # monotone decline
