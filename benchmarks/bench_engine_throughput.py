"""Real wall-clock microbenchmarks of the engine's building blocks.

These are honest pytest-benchmark timings of the NumPy simulation itself
(not the modeled GPU): lock-step local processing at several k, the two
merge implementations, speculation, and the layout transform. They track
the library's own performance over time.
"""

import numpy as np
import pytest

from repro.core.checks import match_pairs
from repro.core.local import process_chunks
from repro.core.lookback import speculate
from repro.core.merge_par import merge_parallel
from repro.core.merge_seq import merge_sequential
from repro.core.types import ChunkResults
from repro.fsm.dfa import DFA
from repro.workloads.chunking import plan_chunks, transform_layout

N_ITEMS = 400_000
N_CHUNKS = 4096


@pytest.fixture(scope="module")
def case():
    dfa = DFA.random(32, 4, rng=0)
    inputs = np.random.default_rng(1).integers(0, 4, size=N_ITEMS).astype(np.int32)
    plan = plan_chunks(N_ITEMS, N_CHUNKS)
    return dfa, inputs, plan


@pytest.mark.parametrize("k", [1, 4, 16])
def test_local_processing(benchmark, case, k):
    dfa, inputs, plan = case
    spec = speculate(dfa, inputs, plan, k, lookback=4)
    transformed = transform_layout(inputs, plan)
    benchmark(process_chunks, dfa, inputs, plan, spec, transformed=transformed)


def test_local_processing_natural_layout(benchmark, case):
    dfa, inputs, plan = case
    spec = speculate(dfa, inputs, plan, 4, lookback=4)
    benchmark(process_chunks, dfa, inputs, plan, spec)


def test_speculation(benchmark, case):
    dfa, inputs, plan = case
    benchmark(speculate, dfa, inputs, plan, 8, lookback=8)


def test_layout_transform(benchmark, case):
    _, inputs, plan = case
    benchmark(transform_layout, inputs, plan)


@pytest.fixture(scope="module")
def results(case):
    dfa, inputs, plan = case
    spec = speculate(dfa, inputs, plan, 4, lookback=8)
    end, _ = process_chunks(dfa, inputs, plan, spec)
    return ChunkResults(spec=spec, end=end, valid=np.ones_like(spec, dtype=bool))


def test_merge_sequential(benchmark, case, results):
    dfa, inputs, plan = case
    benchmark(merge_sequential, dfa, inputs, plan, results, stats=None)


def test_merge_parallel(benchmark, case, results):
    dfa, inputs, plan = case
    benchmark(merge_parallel, dfa, inputs, plan, results, stats=None)


def test_match_pairs_kernel(benchmark):
    rng = np.random.default_rng(0)
    m, k = 8192, 8
    el = rng.integers(0, 64, size=(m, k)).astype(np.int32)
    sr = rng.integers(0, 64, size=(m, k)).astype(np.int32)
    v = np.ones((m, k), dtype=bool)
    benchmark(match_pairs, el, v, sr, v)


# --------------------------------------------------------------------------- #
# CPU scale-out: persistent pool vs per-call spawn
# --------------------------------------------------------------------------- #
#
# The persistent pool's whole point is amortization: the DFA table and the
# input buffer are published to shared memory once, worker processes stay
# alive, and a dispatch pickles ~1 KB of segment names and boundary rows.
# `test_scaleout_per_call_spawn` pays process spawn plus full-table/input
# pickling on every call; `test_scaleout_persistent_pool` pays it once at
# setup, outside the timed region.

POOL_ITEMS = 200_000
POOL_WORKERS = 4


@pytest.fixture(scope="module")
def pool_case():
    from repro.core.mp_executor import ScaleoutPool

    dfa = DFA.random(32, 4, rng=0)
    inputs = np.random.default_rng(2).integers(0, 4, size=POOL_ITEMS).astype(np.int32)
    with ScaleoutPool(
        dfa, num_workers=POOL_WORKERS, k=4, sub_chunks_per_worker=16
    ) as pool:
        pool.run(inputs)  # warm up workers and size the input buffer
        yield dfa, inputs, pool


def test_scaleout_persistent_pool(benchmark, pool_case):
    dfa, inputs, pool = pool_case
    result = benchmark(pool.run, inputs)
    assert result.stats.pool_task_bytes < 8_192


def test_scaleout_per_call_spawn(benchmark, pool_case):
    from repro.core.mp_executor import run_multiprocess

    dfa, inputs, _ = pool_case
    benchmark(
        run_multiprocess,
        dfa,
        inputs,
        num_workers=POOL_WORKERS,
        k=4,
        sub_chunks_per_worker=16,
    )
