"""Real wall-clock microbenchmarks of the engine's building blocks.

These are honest pytest-benchmark timings of the NumPy simulation itself
(not the modeled GPU): lock-step local processing at several k, the two
merge implementations, speculation, and the layout transform. They track
the library's own performance over time.
"""

import numpy as np
import pytest

from repro.core.checks import match_pairs
from repro.core.local import process_chunks
from repro.core.lookback import speculate
from repro.core.merge_par import merge_parallel
from repro.core.merge_seq import merge_sequential
from repro.core.types import ChunkResults
from repro.fsm.dfa import DFA
from repro.workloads.chunking import plan_chunks, transform_layout

N_ITEMS = 400_000
N_CHUNKS = 4096


@pytest.fixture(scope="module")
def case():
    dfa = DFA.random(32, 4, rng=0)
    inputs = np.random.default_rng(1).integers(0, 4, size=N_ITEMS).astype(np.int32)
    plan = plan_chunks(N_ITEMS, N_CHUNKS)
    return dfa, inputs, plan


@pytest.mark.parametrize("k", [1, 4, 16])
def test_local_processing(benchmark, case, k):
    dfa, inputs, plan = case
    spec = speculate(dfa, inputs, plan, k, lookback=4)
    transformed = transform_layout(inputs, plan)
    benchmark(process_chunks, dfa, inputs, plan, spec, transformed=transformed)


def test_local_processing_natural_layout(benchmark, case):
    dfa, inputs, plan = case
    spec = speculate(dfa, inputs, plan, 4, lookback=4)
    benchmark(process_chunks, dfa, inputs, plan, spec)


def test_speculation(benchmark, case):
    dfa, inputs, plan = case
    benchmark(speculate, dfa, inputs, plan, 8, lookback=8)


def test_layout_transform(benchmark, case):
    _, inputs, plan = case
    benchmark(transform_layout, inputs, plan)


@pytest.fixture(scope="module")
def results(case):
    dfa, inputs, plan = case
    spec = speculate(dfa, inputs, plan, 4, lookback=8)
    end, _ = process_chunks(dfa, inputs, plan, spec)
    return ChunkResults(spec=spec, end=end, valid=np.ones_like(spec, dtype=bool))


def test_merge_sequential(benchmark, case, results):
    dfa, inputs, plan = case
    benchmark(merge_sequential, dfa, inputs, plan, results, stats=None)


def test_merge_parallel(benchmark, case, results):
    dfa, inputs, plan = case
    benchmark(merge_parallel, dfa, inputs, plan, results, stats=None)


def test_match_pairs_kernel(benchmark):
    rng = np.random.default_rng(0)
    m, k = 8192, 8
    el = rng.integers(0, 64, size=(m, k)).astype(np.int32)
    sr = rng.integers(0, 64, size=(m, k)).astype(np.int32)
    v = np.ones((m, k), dtype=bool)
    benchmark(match_pairs, el, v, sr, v)
