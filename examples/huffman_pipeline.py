#!/usr/bin/env python
"""Huffman compression pipeline with parallel speculative decoding.

End to end: generate an English-like 'book', build a Huffman code from its
character frequencies, compress it to a bit stream, then decode the bits
with the speculative FSM engine (the paper's largest-table application) and
verify the round trip. Also demonstrates the hot-state cache plan of
Section 4.2.

Run:  python examples/huffman_pipeline.py
"""

import numpy as np

import repro
from repro.apps import HuffmanCode
from repro.cache import plan_hot_states
from repro.util.bitstream import bits_to_bytes
from repro.workloads import synthetic_book


def main() -> None:
    # 1. A synthetic Gutenberg-style book.
    text = synthetic_book(1_000_000, rng=11)
    print(f"book: {text.size:,} characters, "
          f"{np.unique(text).size} distinct symbols")

    # 2. Build the code and compress.
    code = HuffmanCode.from_data(text, num_symbols=256)
    bits = code.encode(text)
    payload, nbits = bits_to_bytes(bits)
    print(f"compressed: {nbits:,} bits ({len(payload):,} bytes, "
          f"{8 * len(payload) / text.size:.2f} bits/char)")

    # 3. The decoder FSM (Table 3's 205-state machine, ours measured):
    dfa = code.decoder_dfa()
    print(f"decoder FSM: {dfa.num_states} states x {dfa.num_inputs} inputs")

    # 4. Hot-state cache plan: which rows live in simulated shared memory?
    cache = plan_hot_states(dfa, shared_budget_bytes=48 * 1024)
    print(f"hot-state cache: {cache.rows_resident}/{dfa.num_states} rows, "
          f"{cache.shared_bytes:,} B shared memory")

    # 5. Decode in parallel with spec-8 + parallel merge + caching.
    result = repro.run_speculative(
        dfa,
        bits.astype(np.int32),
        k=8,
        num_blocks=80,
        threads_per_block=256,
        lookback=16,
        cache_table=True,
        collect=("emissions",),
    )
    _, decoded = result.emissions
    assert np.array_equal(decoded, text), "round trip must be exact"
    print(f"\ndecoded {decoded.size:,} characters — round trip exact")
    print(f"speculation success: {result.success_rate:.4f}   "
          f"cache hit rate: {result.stats.cache_hit_rate:.4f}")

    # 6. Speedups at the paper's 1.24e9-bit scale (Fig. 7 / Fig. 15).
    from repro.gpu.cost import price_at_scale

    PAPER_BITS = 1_243_106_627
    on = price_at_scale(result, PAPER_BITS, cpu_transition_ns=2.22)
    off_run = repro.run_speculative(
        dfa, bits.astype(np.int32), k=8, num_blocks=80, lookback=16,
        cache_table=False, measure_success=False,
    )
    off = price_at_scale(off_run, PAPER_BITS, cpu_transition_ns=2.22)
    print(f"modeled V100 speedup at paper scale: {on.speedup:.0f}x "
          "(paper, Fig. 7: 407x)")
    print(f"without caching: {off.speedup:.0f}x  ->  caching gain "
          f"{on.speedup / off.speedup:.2f}x (paper: ~1.5x)")


if __name__ == "__main__":
    main()
