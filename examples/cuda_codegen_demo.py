#!/usr/bin/env python
"""The code generator: specialized kernels for every configuration.

The paper generates CUDA kernels with Clang libtooling, specializing on
``num_guess`` and selecting the runtime-check implementation. This example
plans kernels for several configurations, prints the generator's decisions,
writes the emitted ``.cu`` sources next to this script, and shows the
generated *Python* kernels the engine can actually execute here.

Run:  python examples/cuda_codegen_demo.py
"""

from pathlib import Path

from repro.apps.registry import get_application
from repro.core.codegen import (
    generate_cuda_kernel,
    generate_local_source,
    plan_kernel,
)

OUT = Path(__file__).parent / "generated_kernels"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    dfa, _ = get_application("huffman").build_instance(100_000, seed=0)

    configs = [
        ("spec4", 4, False),
        ("spec16_hash", 16, False),
        ("specN_spill", None, False),
        ("spec8_cached", 8, True),
    ]
    for name, k, cached in configs:
        plan = plan_kernel(dfa, k, cache_table=cached)
        print(f"--- {name}")
        print(plan.describe())
        cu = generate_cuda_kernel(plan, name=f"fsm_{name}")
        path = OUT / f"{name}.cu"
        path.write_text(cu)
        print(f"wrote {path} ({len(cu)} bytes)\n")

    print("generated Python kernel for spec-2 (engine backend='codegen'):\n")
    print(generate_local_source(2))


if __name__ == "__main__":
    main()
