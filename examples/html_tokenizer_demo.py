#!/usr/bin/env python
"""Parallel HTML tokenization (web-crawler scenario).

Tokenizes a stream of concatenated synthetic pages with the 38-state
tokenizer FSM, recovering token boundaries through the speculative engine,
and cross-checks them against the independent reference tokenizer.

Run:  python examples/html_tokenizer_demo.py
"""

import numpy as np

import repro
from repro.apps import TOKEN_NAMES, build_html_tokenizer, reference_tokenize
from repro.fsm.alphabet import Alphabet
from repro.workloads import synthetic_pages


def main() -> None:
    pages = synthetic_pages(500_000, rng=3)
    print(f"input: {len(pages):,} characters of synthetic HTML")

    dfa = build_html_tokenizer()
    ids = Alphabet.ascii(128).encode_text(pages).astype(np.int32)

    # The paper finds k=1 best for HTML: look-back pins the state reliably.
    result = repro.run_speculative(
        dfa,
        ids,
        k=1,
        num_blocks=40,
        threads_per_block=256,
        lookback=64,
        collect=("emissions",),
    )
    positions, kinds = result.emissions
    print(f"tokens: {positions.size:,}   "
          f"speculation success at k=1: {result.success_rate:.4f}")

    counts = np.bincount(kinds, minlength=len(TOKEN_NAMES))
    for tid, name in enumerate(TOKEN_NAMES):
        print(f"  {name:18s} {int(counts[tid]):8,}")

    # Cross-check against the independently written tokenizer.
    expected = reference_tokenize(pages)
    got = list(zip(positions.tolist(), kinds.tolist()))
    assert got == expected, "FSM tokens must equal the reference tokens"
    print("\nverified against the independent reference tokenizer.")
    from repro.gpu.cost import price_at_scale

    tb = price_at_scale(result, 1_060_900_492, cpu_transition_ns=2.26)
    print(f"modeled V100 speedup at paper scale: {tb.speedup:.0f}x "
          "(paper, Fig. 10: 420.74x)")


if __name__ == "__main__":
    main()
