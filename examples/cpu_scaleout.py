#!/usr/bin/env python
"""Real scale-out on CPU cores with the multiprocessing backend.

The GPU in this reproduction is simulated, but the algorithm also scales
on real hardware: this example runs Div7 across worker processes
(enumerative per-worker maps composed by the parent — a two-level version
of the paper's merge) and reports real wall-clock against the pure
sequential reference loop.

Div7 is the right machine for spec-N workers: only 7 states, so the
enumerative redundancy is small. For a large machine like the 200-state
Huffman decoder, spec-N per-worker work is ~200x redundant and workers
lose — the same trade-off the paper's Figure 7 spec-N bars show; try it by
editing MACHINE below.

Run:  python examples/cpu_scaleout.py
"""

import time


from repro.apps import div7_dfa
from repro.core.mp_executor import ScaleoutPool, run_multiprocess
from repro.fsm.run import run_reference
from repro.workloads import random_bits

MACHINE = "div7"


def main() -> None:
    dfa = div7_dfa()
    bits = random_bits(4_000_000, rng=9)
    print(f"workload: {bits.size:,} bits, {dfa.num_states}-state machine\n")

    t0 = time.perf_counter()
    expected = run_reference(dfa, bits)
    t_seq = time.perf_counter() - t0
    print(f"sequential reference loop: {t_seq:.2f}s (final state {expected})")

    for workers in (1, 2, 4):
        t0 = time.perf_counter()
        res = run_multiprocess(dfa, bits, num_workers=workers,
                               sub_chunks_per_worker=256)
        dt = time.perf_counter() - t0
        assert res.final_state == expected
        note = f"{t_seq / dt:5.1f}x vs reference" if dt > 0 else ""
        print(f"{workers} worker(s): {dt:6.2f}s   {note}   "
              f"re-executed segments: {res.segment_reexecs}")

    # Amortization: a persistent pool publishes the table and input buffer
    # to shared memory once and keeps workers alive, so repeated runs pay
    # only a ~1 KB dispatch. Compare against the per-call spawn above.
    print("\npersistent pool, 4 workers, 5 repeated runs:")
    with ScaleoutPool(dfa, num_workers=4, sub_chunks_per_worker=256) as pool:
        pool.run(bits)  # warm-up: spawn workers, create segments
        t0 = time.perf_counter()
        for _ in range(5):
            res = pool.run(bits)
        dt = (time.perf_counter() - t0) / 5
        assert res.final_state == expected
        print(f"  {dt:6.2f}s per run   "
              f"dispatch: {res.stats.pool_task_bytes:,} B pickled, "
              f"{res.stats.pool_shm_bytes:,} B resident in shared memory")

    print("\nworkers use exact spec-N segment maps (no re-execution ever); "
          "the win comes from\nlock-step vectorization plus process "
          "parallelism. See repro.core.mp_executor.")


if __name__ == "__main__":
    main()
