#!/usr/bin/env python
"""Streaming UTF-8 validation — blocks arrive, state carries over.

A long-lived validator session: byte blocks stream in (as from a network
socket), each block is processed speculatively in parallel, and the exact
machine state carries across block boundaries — even when a boundary
splits a multi-byte sequence. A corrupted block is detected the moment it
is consumed.

Run:  python examples/streaming_utf8_monitor.py
"""

import numpy as np

from repro.apps import encode_utf8_workload, utf8_validator_dfa
from repro.core.streaming import StreamingExecutor
from repro.gpu.cost import CostModel


def main() -> None:
    dfa = utf8_validator_dfa()
    print(f"validator: {dfa.num_states} states x {dfa.num_inputs} byte values")

    # A clean 1.2MB stream arriving in uneven blocks.
    stream = encode_utf8_workload(1_200_000, rng=21)
    rng = np.random.default_rng(3)
    cuts = np.sort(rng.choice(stream.size, size=15, replace=False))
    blocks = np.split(stream, cuts)

    ex = StreamingExecutor(dfa, k=2, num_blocks=20, threads_per_block=256,
                           lookback=4)
    for i, block in enumerate(blocks):
        ex.feed(block)
        status = "valid so far" if ex.accepted else "mid-sequence"
        print(f"block {i:2d}: {block.size:8,} bytes -> {status}")
    assert ex.accepted
    print(f"\nconsumed {ex.items_consumed:,} bytes in {ex.blocks_consumed} "
          f"blocks; speculation success {ex.stats.success_rate:.4f}")

    tb = CostModel().price(
        ex.stats, num_blocks=20, threads_per_block=256, merge="parallel",
        layout_transformed=True,
    )
    print(f"session modeled GPU time: {tb.total_s * 1e3:.2f} ms "
          f"({tb.speedup:.0f}x vs one CPU core)")

    # Now a corrupted stream: the absorbing reject state pins the verdict.
    bad = encode_utf8_workload(300_000, corruption_rate=0.001, rng=22)
    ex.reset()
    for block in np.array_split(bad, 4):
        ex.feed(block)
    print(f"\ncorrupted stream verdict: "
          f"{'valid' if ex.accepted else 'INVALID (reject state reached)'}")


if __name__ == "__main__":
    main()
