#!/usr/bin/env python
"""Quickstart: speculative FSM execution in five minutes.

Builds the paper's Div7 machine (is a binary number divisible by 7?),
runs it speculatively across a simulated GPU grid with both merge
strategies, verifies against the sequential reference, and prints the
modeled V100 timing that the paper's figures report.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.apps import div7_dfa
from repro.fsm.run import run_reference
from repro.workloads import random_bits


def main() -> None:
    # 1. An FSM: 7 states, binary input, state = value mod 7.
    dfa = div7_dfa()
    print(f"machine: {dfa!r}")

    # 2. A workload: 2 million random bits.
    bits = random_bits(2_000_000, rng=42)

    # 3. The trusted baseline: the paper's Figure 1c loop.
    expected = run_reference(dfa, bits)
    print(f"sequential reference final state: {expected}")

    # 4. Speculative execution on a simulated V100: 80 blocks x 256
    #    threads = 20480 chunks, spec-N (Div7 never converges, so the
    #    paper enumerates all 7 states), parallel tree merge.
    result = repro.run_speculative(
        dfa,
        bits,
        k=None,  # spec-N
        num_blocks=80,
        threads_per_block=256,
        merge="parallel",
    )
    assert result.final_state == expected, "speculation must be exact"
    print(f"speculative final state:          {result.final_state}  (match)")
    print(f"speculation success rate:         {result.success_rate:.3f}")

    # 5. What did it cost? Counted events, priced on the V100 model.
    s = result.stats
    print(f"\ncounted work: {s.local_transitions:,} transitions over "
          f"{s.num_chunks:,} chunks (k={s.k})")
    t = result.timing
    print("modeled V100 timing: "
          f"local {t.local_s * 1e3:.2f} ms + merge {t.merge_s * 1e3:.3f} ms "
          f"-> speedup {t.speedup:.0f}x over 1 CPU core")

    # 6. The paper's headline: the sequential merge stops scaling.
    print("\nmerge scalability (modeled speedup):")
    for merge in ("sequential", "parallel"):
        speeds = []
        for blocks in (20, 40, 80):
            r = repro.run_speculative(
                dfa, bits, k=None, num_blocks=blocks, merge=merge,
                measure_success=False,
            )
            # project counted stats to the paper's 2^30-item input
            proj = r.stats.project(2**30)
            model = repro.CostModel(cpu_transition_ns=2.23)
            tb = model.price(
                proj, num_blocks=blocks, threads_per_block=256,
                merge=merge, layout_transformed=True,
            )
            speeds.append(f"{blocks} blocks: {tb.speedup:6.1f}x")
        print(f"  {merge:10s} {'   '.join(speeds)}")
    print("\n(paper, Fig. 11: sequential peaks near 105x and declines; "
          "parallel reaches 397.93x at 80 blocks)")


if __name__ == "__main__":
    main()
