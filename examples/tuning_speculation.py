#!/usr/bin/env python
"""Choosing k and the merge strategy: the paper's design space, explored.

Sweeps the speculation width k and the merge implementation for regular
expression 1, printing the measured success rate and the modeled V100 time
breakdown for each point — the experiment behind Figures 12/13 and the
"how to choose k" discussion of Section 5.3 / the paper's future work.

Run:  python examples/tuning_speculation.py
"""

import repro
from repro.apps.registry import get_application
from repro.gpu.cost import CostModel


def main() -> None:
    app = get_application("regex1")
    dfa, inputs = app.build_instance(1_000_000, seed=5)
    model = CostModel(cpu_transition_ns=app.paper_cpu_ns_per_item)

    print(f"machine: {dfa.num_states} states x {dfa.num_inputs} input classes")
    print(f"{'k':>4} {'merge':>10} {'success':>8} {'local':>9} {'merge':>9} "
          f"{'reexec':>9} {'fixup':>9} {'speedup':>9}")

    best = (None, 0.0)
    for k in (1, 2, 4, 8, 16, None):
        for merge in ("sequential", "parallel"):
            r = repro.run_speculative(
                dfa, inputs, k=k, num_blocks=80, threads_per_block=256,
                merge=merge, lookback=app.default_lookback, price=False,
            )
            tb = model.price(
                r.stats.project(app.paper_num_items),
                num_blocks=80, threads_per_block=256, merge=merge,
                layout_transformed=True,
            )
            label = "N" if k is None else k
            print(f"{label:>4} {merge:>10} {r.success_rate:8.3f} "
                  f"{tb.local_s * 1e3:8.2f}m {tb.merge_s * 1e3:8.3f}m "
                  f"{tb.reexec_s * 1e3:8.3f}m "
                  f"{tb.fixup_s * 1e3:8.3f}m {tb.speedup:8.1f}x")
            if merge == "parallel" and tb.speedup > best[1]:
                best = (label, tb.speedup)

    print(f"\nbest configuration: spec-{best[0]} with parallel merge "
          f"({best[1]:.0f}x modeled)")
    print("paper (Fig. 12): best k for regex 1 is 8; sequential merge "
          "plateaus regardless of k (Fig. 3)")


if __name__ == "__main__":
    main()
