#!/usr/bin/env python
"""NIDS-style regular-expression matching over a traffic stream.

The paper's motivating scenario (Snort-like intrusion detection): many
regular expressions checked against the same input stream. The layout
transformation is performed once and amortized across all patterns —
exactly the argument of Section 4.1.

This example compiles several patterns to streaming-search DFAs over one
shared alphabet, then answers "which rules fired, and where" two ways:

1. **per-pattern baseline** — each DFA runs speculatively over the stream
   on its own (one pass per pattern, per-pattern input-class compression);
2. **multi-pattern one-pass** — the whole rule group runs in a single
   pass: joint cross-pattern alphabet compaction, block-diagonal union
   table, every pattern's lanes advanced by one fused gather per step
   (``repro.run_speculative([dfa, ...], stream)``).

Both are verified bit-exact against the sequential reference trace.

Run:  python examples/nids_regex_matching.py
"""

import time

import numpy as np

import repro
from repro.fsm.alphabet import Alphabet
from repro.fsm.run import run_reference_trace
from repro.regex import compile_search, compress_inputs
from repro.util.rng import ensure_rng

PATTERNS = {
    "subseq-like-or-apple": "(.*l.*i.*k.*e)|(.*a.*p.*p.*l.*e)",
    "attack-literal": "attack",
    "exfil-pattern": "get(x|y)*data",
    "repeated-fields": "(.+;){3}",
    "hex-run": "[abcdef]{6}",
}


def main() -> None:
    rng = ensure_rng(7)
    alphabet = Alphabet.from_symbols(
        tuple("abcdefghijklmnopqrstuvwxyz;")
    )
    # synthetic "traffic": letters with occasional ';' separators
    probs = np.full(27, 0.9 / 26)
    probs[-1] = 0.1
    stream_ids = rng.choice(27, size=1_000_000, p=probs).astype(np.int32)

    print(f"stream: {stream_ids.size:,} characters, "
          f"{len(PATTERNS)} patterns\n")

    machines = {
        name: compile_search(pattern, alphabet, name=name)
        for name, pattern in PATTERNS.items()
    }

    # Ground truth once per pattern: positions where the search DFA sits
    # in an accepting state after consuming the symbol.
    expected = {}
    for name, dfa in machines.items():
        trace = run_reference_trace(dfa, stream_ids)
        expected[name] = np.flatnonzero(dfa.accepting[trace])

    # ---- baseline: one speculative pass per pattern -------------------- #
    print("per-pattern baseline (one pass per rule):")
    t0 = time.perf_counter()
    for name, dfa in machines.items():
        comp = compress_inputs(dfa)
        inputs = comp.encode_inputs(stream_ids)
        result = repro.run_speculative(
            comp.dfa,
            inputs,
            k=4,
            num_blocks=40,
            threads_per_block=256,
            lookback=8,
            collect=("match_positions",),
        )
        assert np.array_equal(result.match_positions, expected[name])
        first = (
            f"first at {result.match_positions[0]:,}"
            if result.match_positions.size
            else "no matches"
        )
        print(
            f"  {name:22s} states={comp.dfa.num_states:3d} "
            f"classes={comp.num_classes:2d}  "
            f"matches={result.match_positions.size:7,}  {first}  "
            f"success={result.success_rate:.3f}"
        )
    t_base = time.perf_counter() - t0

    # ---- multi-pattern: the whole group in ONE pass -------------------- #
    # A list of machines routes through repro.core.multipattern: joint
    # alphabet compaction across the group, a block-diagonal union table,
    # and one fused gather advancing every pattern's lanes per symbol.
    t0 = time.perf_counter()
    mres = repro.run_speculative(
        list(machines.values()),
        stream_ids,
        k=4,
        num_blocks=16,
        threads_per_block=16,
        lookback=8,
        collect=("match_positions",),
    )
    t_multi = time.perf_counter() - t0

    print(f"\nmulti-pattern one-pass (route={mres.route!r}):")
    for pr in mres.patterns:
        assert np.array_equal(pr.match_positions, expected[pr.name])
        print(
            f"  {pr.name:22s} matches={pr.match_count:7,}  "
            f"accepted={pr.accepted}"
        )

    print(
        f"\n{len(PATTERNS)} passes -> 1 pass: "
        f"baseline {t_base:.3f}s, one-pass {t_multi:.3f}s "
        f"({t_base / t_multi:.2f}x aggregate)"
    )
    print("all patterns verified against the sequential reference.")


if __name__ == "__main__":
    main()
