#!/usr/bin/env python
"""NIDS-style regular-expression matching over a traffic stream.

The paper's motivating scenario (Snort-like intrusion detection): many
regular expressions checked against the same input stream. The layout
transformation is performed once and amortized across all patterns —
exactly the argument of Section 4.1.

This example compiles several patterns to DFAs (with input-class
compression), runs each speculatively over the same 1M-character stream,
reports match counts and positions, and verifies everything against the
sequential reference.

Run:  python examples/nids_regex_matching.py
"""

import numpy as np

import repro
from repro.fsm.alphabet import Alphabet
from repro.fsm.run import run_reference_trace
from repro.regex import compile_search, compress_inputs
from repro.util.rng import ensure_rng

PATTERNS = {
    "subseq-like-or-apple": "(.*l.*i.*k.*e)|(.*a.*p.*p.*l.*e)",
    "attack-literal": "attack",
    "exfil-pattern": "get(x|y)*data",
    "repeated-fields": "(.+;){3}",
    "hex-run": "[abcdef]{6}",
}


def main() -> None:
    rng = ensure_rng(7)
    alphabet = Alphabet.from_symbols(
        tuple("abcdefghijklmnopqrstuvwxyz;")
    )
    # synthetic "traffic": letters with occasional ';' separators
    probs = np.full(27, 0.9 / 26)
    probs[-1] = 0.1
    stream_ids = rng.choice(27, size=1_000_000, p=probs).astype(np.int32)

    print(f"stream: {stream_ids.size:,} characters, "
          f"{len(PATTERNS)} patterns\n")

    for name, pattern in PATTERNS.items():
        searcher = compile_search(pattern, alphabet, name=name)
        comp = compress_inputs(searcher)
        inputs = comp.encode_inputs(stream_ids)

        result = repro.run_speculative(
            comp.dfa,
            inputs,
            k=4,
            num_blocks=40,
            threads_per_block=256,
            lookback=8,
            collect=("match_positions",),
            price=True,
        )

        # verify against the sequential trace
        trace = run_reference_trace(comp.dfa, inputs)
        expected = np.flatnonzero(comp.dfa.accepting[trace])
        assert np.array_equal(result.match_positions, expected)

        first = (
            f"first at {result.match_positions[0]:,}"
            if result.match_positions.size
            else "no matches"
        )
        from repro.gpu.cost import price_at_scale

        tb = price_at_scale(result, 2**30)  # a 1 GiB traffic capture
        print(
            f"{name:22s} states={comp.dfa.num_states:3d} "
            f"classes={comp.num_classes}  "
            f"matches={result.match_positions.size:7,}  {first}  "
            f"success={result.success_rate:.3f}  "
            f"modeled speedup at 2^30 items={tb.speedup:7.1f}x"
        )

    print("\nall patterns verified against the sequential reference.")


if __name__ == "__main__":
    main()
