"""Setuptools shim.

Allows ``python setup.py develop`` on environments without the ``wheel``
package (pip's PEP-660 editable installs need it); all real metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
